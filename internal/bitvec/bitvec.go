// Package bitvec provides bit-set arithmetic over compact subject masks.
//
// A lattice state for a cohort of N <= 64 subjects is a Mask: bit i is set
// when subject i is infected. Pools (the subsets of subjects mixed into one
// physical test) use the same representation, so likelihood evaluation
// reduces to popcount intersections. The package also provides the
// combinatorial helpers the halving algorithm needs: ranked k-combinations,
// subset enumeration, and binomial coefficients.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

// Mask is a subset of subjects {0..63} encoded one bit per subject.
type Mask uint64

// MaxSubjects is the largest cohort size a single Mask can represent.
const MaxSubjects = 64

// FromIndices builds a Mask with the given subject indices set.
// It panics if an index is outside [0, MaxSubjects).
func FromIndices(idx ...int) Mask {
	var m Mask
	for _, i := range idx {
		if i < 0 || i >= MaxSubjects {
			panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, MaxSubjects))
		}
		m |= 1 << uint(i)
	}
	return m
}

// Full returns the mask with the n lowest bits set (the full cohort of size n).
// It panics if n is outside [0, MaxSubjects].
func Full(n int) Mask {
	if n < 0 || n > MaxSubjects {
		panic(fmt.Sprintf("bitvec: cohort size %d out of range [0,%d]", n, MaxSubjects))
	}
	if n == MaxSubjects {
		return ^Mask(0)
	}
	return Mask(1)<<uint(n) - 1
}

// Count reports the number of subjects in m.
func (m Mask) Count() int { return bits.OnesCount64(uint64(m)) }

// Has reports whether subject i is in m.
func (m Mask) Has(i int) bool { return m&(1<<uint(i)) != 0 }

// With returns m with subject i added.
func (m Mask) With(i int) Mask { return m | 1<<uint(i) }

// Without returns m with subject i removed.
func (m Mask) Without(i int) Mask { return m &^ (1 << uint(i)) }

// IntersectCount reports |m ∩ p|: the number of infected subjects a pool p
// captures from state m. This is the quantity dilution models condition on.
func (m Mask) IntersectCount(p Mask) int { return bits.OnesCount64(uint64(m & p)) }

// Disjoint reports whether m and p share no subjects.
func (m Mask) Disjoint(p Mask) bool { return m&p == 0 }

// SubsetOf reports whether every subject of m is also in p (m ⊆ p).
// This is the lattice partial order.
func (m Mask) SubsetOf(p Mask) bool { return m&^p == 0 }

// Meet returns the lattice meet (intersection) of m and p.
func (m Mask) Meet(p Mask) Mask { return m & p }

// Join returns the lattice join (union) of m and p.
func (m Mask) Join(p Mask) Mask { return m | p }

// Indices returns the subject indices in m in ascending order.
func (m Mask) Indices() []int {
	out := make([]int, 0, m.Count())
	for v := uint64(m); v != 0; {
		i := bits.TrailingZeros64(v)
		out = append(out, i)
		v &= v - 1
	}
	return out
}

// Lowest returns the smallest subject index in m, or -1 if m is empty.
func (m Mask) Lowest() int {
	if m == 0 {
		return -1
	}
	return bits.TrailingZeros64(uint64(m))
}

// Highest returns the largest subject index in m, or -1 if m is empty.
func (m Mask) Highest() int {
	if m == 0 {
		return -1
	}
	return 63 - bits.LeadingZeros64(uint64(m))
}

// String renders m as a set literal such as {0,3,7}, for diagnostics.
func (m Mask) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, idx := range m.Indices() {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", idx)
	}
	b.WriteByte('}')
	return b.String()
}
