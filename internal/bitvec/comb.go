package bitvec

import (
	"fmt"
	"math/bits"
)

// Binomial returns C(n, k) using the multiplicative formula with running
// division. Every result for n <= 64 fits in uint64, but the intermediate
// product c·(n-i) can exceed 64 bits near the middle of the table, so the
// multiply-divide step goes through a 128-bit intermediate. It returns 0
// when k < 0 or k > n, matching the combinatorial convention.
func Binomial(n, k int) uint64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	var c uint64 = 1
	for i := 0; i < k; i++ {
		// c·(n-i) is always divisible by i+1 (the running product holds
		// C(n, i+1) after the division), and the quotient fits in uint64,
		// so Div64's hi < divisor precondition holds.
		hi, lo := bits.Mul64(c, uint64(n-i))
		c, _ = bits.Div64(hi, lo, uint64(i+1))
	}
	return c
}

// CombinationRank returns the rank of mask m within the colexicographic
// enumeration of all Count(m)-subsets of an unbounded ground set. Combined
// with UnrankCombination it gives a bijection between [0, C(n,k)) and the
// k-subsets of {0..n-1}, which the halving candidate generator uses to
// partition candidate pools across workers without materializing them.
func CombinationRank(m Mask) uint64 {
	var rank uint64
	for j, idx := range m.Indices() {
		rank += Binomial(idx, j+1)
	}
	return rank
}

// UnrankCombination returns the k-subset of {0..n-1} with the given
// colexicographic rank. It panics if rank >= Binomial(n, k).
func UnrankCombination(n, k int, rank uint64) Mask {
	if rank >= Binomial(n, k) {
		panic(fmt.Sprintf("bitvec: rank %d out of range for C(%d,%d)=%d", rank, n, k, Binomial(n, k)))
	}
	var m Mask
	for j := k; j >= 1; j-- {
		// Largest index c with Binomial(c, j) <= rank.
		c := j - 1
		for Binomial(c+1, j) <= rank {
			c++
		}
		rank -= Binomial(c, j)
		m = m.With(c)
	}
	return m
}

// NextCombination advances m to the next k-subset in colexicographic order
// over the ground set {0..n-1}. It returns false (and leaves m unspecified)
// when m is already the last combination. Gosper's hack, bounded to n bits.
func NextCombination(m Mask, n int) (Mask, bool) {
	if m == 0 {
		return 0, false
	}
	u := uint64(m)
	c := u & (^u + 1) // lowest set bit
	r := u + c
	next := Mask((((r ^ u) >> 2) / c) | r)
	if next >= Mask(1)<<uint(n) && n < 64 {
		return 0, false
	}
	if n == 64 && next < m { // wrapped
		return 0, false
	}
	return next, true
}

// FirstCombination returns the colexicographically first k-subset of
// {0..n-1}: the k lowest indices. It panics when k > n.
func FirstCombination(n, k int) Mask {
	if k > n {
		panic(fmt.Sprintf("bitvec: k=%d exceeds n=%d", k, n))
	}
	return Full(k)
}
