package bitvec

// Subsets calls fn for every subset of ground (including the empty set and
// ground itself), in an order that visits each subset exactly once. The
// standard sub-mask enumeration trick walks the 2^|ground| subsets in
// decreasing mask order followed by the empty set. It stops early if fn
// returns false.
func Subsets(ground Mask, fn func(Mask) bool) {
	for s := ground; ; s = (s - 1) & ground {
		if !fn(s) {
			return
		}
		if s == 0 {
			return
		}
	}
}

// GrayStates calls fn(index, state, flippedBit) for every state of an
// n-subject lattice in binary-reflected Gray order: consecutive states differ
// in exactly one subject, whose index is passed as flippedBit (-1 for the
// first call, which visits the empty state). Gray order lets incremental
// algorithms update popcount-dependent quantities in O(1) per state. It
// panics when n is outside [0, 30]; full enumerations beyond 2^30 states are
// a programming error at this scale.
func GrayStates(n int, fn func(index uint64, state Mask, flipped int) bool) {
	if n < 0 || n > 30 {
		panic("bitvec: GrayStates supports 0 <= n <= 30")
	}
	total := uint64(1) << uint(n)
	var state Mask
	if !fn(0, 0, -1) {
		return
	}
	for i := uint64(1); i < total; i++ {
		// The bit flipped between gray(i-1) and gray(i) is the lowest set
		// bit of i.
		flip := trailingZeros(i)
		state ^= 1 << uint(flip)
		if !fn(i, state, flip) {
			return
		}
	}
}

func trailingZeros(v uint64) int {
	n := 0
	for v&1 == 0 {
		v >>= 1
		n++
	}
	return n
}

// StateOf returns the lattice state visited at position i of the Gray walk,
// i.e. the binary-reflected Gray code of i.
func StateOf(i uint64) Mask { return Mask(i ^ (i >> 1)) }

// IndexOf inverts StateOf: it returns the Gray-walk position of state s.
func IndexOf(s Mask) uint64 {
	v := uint64(s)
	for shift := uint(1); shift < 64; shift <<= 1 {
		v ^= v >> shift
	}
	return v
}
