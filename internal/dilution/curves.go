package dilution

import (
	"fmt"
	"math"

	"repro/internal/prob"
	"repro/internal/rng"
)

// Hyperbolic is Hwang's dilution model: when k of n specimens are infected,
// the test detects with probability
//
//	P(positive | k, n) = MaxSens · k / (k + D·(n−k))        for k ≥ 1
//	P(positive | 0, n) = 1 − Spec
//
// D ∈ (0, 1] controls dilution severity: D → 0 recovers the undiluted
// Binary model; D = 1 makes sensitivity proportional to prevalence in the
// pool. This is the primary dilution family in the Biostatistics companion
// paper's experiments.
type Hyperbolic struct {
	MaxSens float64 // sensitivity of an undiluted (all-positive) pool
	Spec    float64
	D       float64
}

// PosProb returns P(positive | k, n).
func (h Hyperbolic) PosProb(k, n int) float64 {
	if k == 0 {
		return 1 - h.Spec
	}
	kk := float64(k)
	return prob.Clamp01(h.MaxSens * kk / (kk + h.D*float64(n-k)))
}

// Likelihood implements Response.
func (h Hyperbolic) Likelihood(y Outcome, k, n int) float64 {
	p := h.PosProb(k, n)
	if y.Positive {
		return p
	}
	return 1 - p
}

// Sample implements Response.
func (h Hyperbolic) Sample(r *rng.Source, k, n int) Outcome {
	validate(k, n)
	if r.Bernoulli(h.PosProb(k, n)) {
		return Positive
	}
	return Negative
}

// Name implements Response.
func (h Hyperbolic) Name() string {
	return fmt.Sprintf("hyperbolic(se=%.3g,sp=%.3g,d=%.3g)", h.MaxSens, h.Spec, h.D)
}

// Logistic models sensitivity as a logistic function of log concentration:
//
//	P(positive | k, n) = MaxSens · σ(Alpha + Beta·log2(k/n))   for k ≥ 1
//
// Beta > 0 sets how many two-fold dilutions the assay tolerates; Alpha
// positions the curve so an undiluted positive (k = n) detects at
// MaxSens·σ(Alpha). This mirrors how limit-of-detection curves are fitted
// to serial-dilution lab panels.
type Logistic struct {
	MaxSens float64
	Spec    float64
	Alpha   float64
	Beta    float64
}

// PosProb returns P(positive | k, n).
func (l Logistic) PosProb(k, n int) float64 {
	if k == 0 {
		return 1 - l.Spec
	}
	x := l.Alpha + l.Beta*math.Log2(float64(k)/float64(n))
	return prob.Clamp01(l.MaxSens * prob.Logistic(x))
}

// Likelihood implements Response.
func (l Logistic) Likelihood(y Outcome, k, n int) float64 {
	p := l.PosProb(k, n)
	if y.Positive {
		return p
	}
	return 1 - p
}

// Sample implements Response.
func (l Logistic) Sample(r *rng.Source, k, n int) Outcome {
	validate(k, n)
	if r.Bernoulli(l.PosProb(k, n)) {
		return Positive
	}
	return Negative
}

// Name implements Response.
func (l Logistic) Name() string {
	return fmt.Sprintf("logistic(se=%.3g,sp=%.3g,a=%.3g,b=%.3g)", l.MaxSens, l.Spec, l.Alpha, l.Beta)
}

// Subsample is the independent-detection model: each infected specimen in
// the pool survives dilution and triggers detection independently with
// probability Q/n-scaled concentration, so
//
//	P(positive | k, n) = 1 − Spec                    for k = 0
//	P(positive | k, n) = 1 − (1 − Q/n)^k·(1-FalseNeg) ...
//
// concretely: each of the k infected contributes detectable material with
// probability q(n) = Q·(pool of 1)/n normalized so a lone positive in a
// pool of 1 detects with probability Q. A pool is positive when at least
// one contribution is detected (plus the false-positive floor 1 − Spec).
type Subsample struct {
	Q    float64 // per-specimen detection probability in an undiluted test
	Spec float64
}

// PosProb returns P(positive | k, n).
func (s Subsample) PosProb(k, n int) float64 {
	if k == 0 {
		return 1 - s.Spec
	}
	q := s.Q / float64(n)
	pMiss := math.Pow(1-q, float64(k))
	// Independent false-positive channel: 1 − Spec fires regardless.
	return prob.Clamp01(1 - pMiss*s.Spec)
}

// Likelihood implements Response.
func (s Subsample) Likelihood(y Outcome, k, n int) float64 {
	p := s.PosProb(k, n)
	if y.Positive {
		return p
	}
	return 1 - p
}

// Sample implements Response.
func (s Subsample) Sample(r *rng.Source, k, n int) Outcome {
	validate(k, n)
	if r.Bernoulli(s.PosProb(k, n)) {
		return Positive
	}
	return Negative
}

// Name implements Response.
func (s Subsample) Name() string {
	return fmt.Sprintf("subsample(q=%.3g,sp=%.3g)", s.Q, s.Spec)
}
