package dilution

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// CtValue models an RT-PCR readout as a continuous cycle-threshold (Ct)
// value — the "general test response distributions beyond just binary
// outcomes" the Bayesian framework supports.
//
// Physics: amplification is exponential, so halving the infected fraction
// of a pool delays detection by about one cycle. Given k ≥ 1 infected in a
// pool of n, the Ct reading is
//
//	Ct | k, n  ~  Normal(Base + Slope·log2(n/k), Sigma)
//
// censored at MaxCycles: a reaction that has not crossed threshold by the
// cycle cap reads out as a negative. A clean pool (k = 0) amplifies only
// through contamination, with probability 1 − Spec, in which case the Ct is
// uniform over the last ContamWindow cycles before the cap (late, weak
// signals).
type CtValue struct {
	Base         float64 // mean Ct of an undiluted positive pool
	Slope        float64 // cycles added per two-fold dilution (≈1 for perfect PCR)
	Sigma        float64 // measurement noise, in cycles
	MaxCycles    float64 // censoring limit (assays run 40–45 cycles)
	Spec         float64 // P(no contamination signal | k = 0)
	ContamWindow float64 // width of the late-cycle band contamination lands in
}

// DefaultCt returns literature-typical RT-PCR parameters: 22-cycle baseline,
// one cycle per two-fold dilution, 1.5 cycles of noise, a 40-cycle cap, and
// 0.1% contamination landing within 5 cycles of the cap.
func DefaultCt() CtValue {
	return CtValue{Base: 22, Slope: 1, Sigma: 1.5, MaxCycles: 40, Spec: 0.999, ContamWindow: 5}
}

// mean returns the expected Ct for k >= 1 infected among n.
func (c CtValue) mean(k, n int) float64 {
	return c.Base + c.Slope*math.Log2(float64(n)/float64(k))
}

// normPDF is the Normal(mu, sigma) density at x.
func normPDF(x, mu, sigma float64) float64 {
	z := (x - mu) / sigma
	return math.Exp(-0.5*z*z) / (sigma * math.Sqrt(2*math.Pi))
}

// normCDF is the standard-normal-based CDF of Normal(mu, sigma) at x.
func normCDF(x, mu, sigma float64) float64 {
	return 0.5 * math.Erfc(-(x-mu)/(sigma*math.Sqrt2))
}

// Likelihood implements Response. For a positive outcome it returns the
// density of the observed Ct; for a negative outcome the censored-tail
// probability P(Ct > MaxCycles).
func (c CtValue) Likelihood(y Outcome, k, n int) float64 {
	if k == 0 {
		if !y.Positive {
			return c.Spec
		}
		// Contamination: uniform density over the late window, zero outside.
		lo := c.MaxCycles - c.ContamWindow
		if y.Ct >= lo && y.Ct <= c.MaxCycles {
			return (1 - c.Spec) / c.ContamWindow
		}
		return 0
	}
	mu := c.mean(k, n)
	if y.Positive {
		if y.Ct > c.MaxCycles {
			return 0 // a reading beyond the cap cannot be reported positive
		}
		return normPDF(y.Ct, mu, c.Sigma)
	}
	return 1 - normCDF(c.MaxCycles, mu, c.Sigma)
}

// Sample implements Response.
func (c CtValue) Sample(r *rng.Source, k, n int) Outcome {
	validate(k, n)
	if k == 0 {
		if r.Bernoulli(c.Spec) {
			return Negative
		}
		ct := c.MaxCycles - c.ContamWindow*r.Float64()
		return Outcome{Positive: true, Ct: ct}
	}
	ct := c.mean(k, n) + c.Sigma*r.NormFloat64()
	if ct > c.MaxCycles {
		return Negative
	}
	if ct < 1 {
		ct = 1 // physical floor: amplification needs at least one cycle
	}
	return Outcome{Positive: true, Ct: ct}
}

// Name implements Response.
func (c CtValue) Name() string {
	return fmt.Sprintf("ct(base=%.3g,slope=%.3g,sigma=%.3g,max=%.3g)", c.Base, c.Slope, c.Sigma, c.MaxCycles)
}
