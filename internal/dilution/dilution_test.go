package dilution

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// allModels returns one configured instance of every Response family.
func allModels() []Response {
	return []Response{
		Ideal{},
		Binary{Sens: 0.95, Spec: 0.99},
		Hyperbolic{MaxSens: 0.99, Spec: 0.99, D: 0.2},
		Logistic{MaxSens: 0.99, Spec: 0.99, Alpha: 4, Beta: 1.5},
		Subsample{Q: 0.95, Spec: 0.99},
		DefaultCt(),
	}
}

func TestBinaryLikelihoodsSumToOne(t *testing.T) {
	// For every binary-outcome model, P(pos) + P(neg) must equal 1 for all
	// pool compositions.
	for _, m := range allModels() {
		if _, isCt := m.(CtValue); isCt {
			continue // continuous outcome: densities, not masses
		}
		for n := 1; n <= 64; n *= 2 {
			for k := 0; k <= n; k++ {
				pos := m.Likelihood(Positive, k, n)
				neg := m.Likelihood(Negative, k, n)
				if pos < 0 || pos > 1 || neg < 0 || neg > 1 {
					t.Fatalf("%s: likelihood outside [0,1] at k=%d n=%d: %v/%v", m.Name(), k, n, pos, neg)
				}
				if math.Abs(pos+neg-1) > 1e-12 {
					t.Fatalf("%s: P(pos)+P(neg) = %v at k=%d n=%d", m.Name(), pos+neg, k, n)
				}
			}
		}
	}
}

func TestIdeal(t *testing.T) {
	var m Ideal
	if got := m.Likelihood(Positive, 0, 8); got != 0 {
		t.Errorf("P(pos|clean) = %v", got)
	}
	if got := m.Likelihood(Negative, 0, 8); got != 1 {
		t.Errorf("P(neg|clean) = %v", got)
	}
	if got := m.Likelihood(Positive, 3, 8); got != 1 {
		t.Errorf("P(pos|k=3) = %v", got)
	}
	r := rng.New(1)
	if y := m.Sample(r, 0, 4); y.Positive {
		t.Error("ideal sampled positive on clean pool")
	}
	if y := m.Sample(r, 2, 4); !y.Positive {
		t.Error("ideal sampled negative on infected pool")
	}
}

func TestBinaryNoDilutionDependence(t *testing.T) {
	m := Binary{Sens: 0.9, Spec: 0.97}
	// Sensitivity must not depend on k or n once k >= 1.
	base := m.Likelihood(Positive, 1, 32)
	for _, kn := range [][2]int{{1, 1}, {2, 8}, {32, 32}, {1, 64}} {
		if got := m.Likelihood(Positive, kn[0], kn[1]); got != base {
			t.Errorf("Binary sens varies with composition %v: %v != %v", kn, got, base)
		}
	}
	if got := m.Likelihood(Positive, 0, 8); math.Abs(got-0.03) > 1e-12 {
		t.Errorf("false-positive rate = %v, want 0.03", got)
	}
}

func TestHyperbolicMonotonicity(t *testing.T) {
	m := Hyperbolic{MaxSens: 0.99, Spec: 0.99, D: 0.3}
	n := 32
	prev := -1.0
	for k := 1; k <= n; k++ {
		p := m.PosProb(k, n)
		if p <= prev {
			t.Fatalf("sensitivity not increasing in k: P(k=%d)=%v <= P(k=%d)=%v", k, p, k-1, prev)
		}
		prev = p
	}
	// Undiluted pool hits MaxSens exactly.
	if got := m.PosProb(n, n); math.Abs(got-0.99) > 1e-12 {
		t.Errorf("P(pos|k=n) = %v, want MaxSens", got)
	}
	// More dilution (bigger pool, same k) lowers sensitivity.
	if m.PosProb(1, 8) <= m.PosProb(1, 32) {
		t.Error("sensitivity did not decay with pool size")
	}
}

func TestHyperbolicDZeroRecoversBinary(t *testing.T) {
	h := Hyperbolic{MaxSens: 0.95, Spec: 0.99, D: 0}
	b := Binary{Sens: 0.95, Spec: 0.99}
	for n := 1; n <= 32; n *= 2 {
		for k := 0; k <= n; k++ {
			if got, want := h.Likelihood(Positive, k, n), b.Likelihood(Positive, k, n); math.Abs(got-want) > 1e-12 {
				t.Fatalf("D=0 hyperbolic != binary at k=%d n=%d: %v vs %v", k, n, got, want)
			}
		}
	}
}

func TestLogisticMonotonicity(t *testing.T) {
	m := Logistic{MaxSens: 0.99, Spec: 0.99, Alpha: 4, Beta: 1.5}
	n := 32
	prev := -1.0
	for k := 1; k <= n; k++ {
		p := m.PosProb(k, n)
		if p < prev {
			t.Fatalf("logistic sensitivity decreasing in k at k=%d", k)
		}
		prev = p
	}
	// Single positive in a large pool is much harder to detect.
	if m.PosProb(1, 64) >= m.PosProb(64, 64) {
		t.Error("logistic: dilution did not reduce sensitivity")
	}
}

func TestSubsampleComposition(t *testing.T) {
	m := Subsample{Q: 0.9, Spec: 1} // disable false positives for this check
	// With two infected, miss probability should be the square of the
	// single-infected miss probability (independence).
	n := 16
	q := 0.9 / float64(n)
	p1 := m.PosProb(1, n)
	p2 := m.PosProb(2, n)
	if math.Abs((1-p2)-(1-q)*(1-q)) > 1e-12 || math.Abs((1-p1)-(1-q)) > 1e-12 {
		t.Fatalf("independence violated: p1=%v p2=%v", p1, p2)
	}
}

func TestSampleMatchesLikelihood(t *testing.T) {
	// Empirical positive rate of Sample must match Likelihood(Positive).
	r := rng.New(99)
	const trials = 20000
	for _, m := range allModels() {
		for _, kn := range [][2]int{{0, 8}, {1, 8}, {4, 8}, {8, 8}, {1, 32}} {
			k, n := kn[0], kn[1]
			pos := 0
			for i := 0; i < trials; i++ {
				if m.Sample(r, k, n).Positive {
					pos++
				}
			}
			var want float64
			if ct, isCt := m.(CtValue); isCt {
				want = 1 - ct.Likelihood(Negative, k, n)
				if k == 0 {
					want = 1 - ct.Spec
				}
			} else {
				want = m.Likelihood(Positive, k, n)
			}
			got := float64(pos) / trials
			if math.Abs(got-want) > 0.015 {
				t.Errorf("%s k=%d n=%d: empirical P(pos)=%v, model %v", m.Name(), k, n, got, want)
			}
		}
	}
}

func TestSamplePanicsOnBadComposition(t *testing.T) {
	r := rng.New(1)
	for _, bad := range [][2]int{{-1, 4}, {5, 4}, {0, 0}, {0, 65}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Sample(k=%d,n=%d) did not panic", bad[0], bad[1])
				}
			}()
			Ideal{}.Sample(r, bad[0], bad[1])
		}()
	}
}

func TestCtLikelihoodShape(t *testing.T) {
	c := DefaultCt()
	// A Ct near the dilution-adjusted mean is more likely than one far away.
	mu := c.Base + c.Slope*math.Log2(8.0/1.0) // k=1, n=8
	near := c.Likelihood(Outcome{Positive: true, Ct: mu}, 1, 8)
	far := c.Likelihood(Outcome{Positive: true, Ct: mu + 6}, 1, 8)
	if near <= far {
		t.Fatalf("density at mean %v <= density 6 cycles away %v", near, far)
	}
	// Heavier dilution shifts the mean later: a late Ct favors k=1 over k=8.
	late := c.Base + 3
	if c.Likelihood(Outcome{Positive: true, Ct: late}, 1, 8) <= c.Likelihood(Outcome{Positive: true, Ct: late}, 8, 8) {
		t.Error("late Ct should be better explained by a diluted pool")
	}
	// Negative outcomes are more likely when dilution pushes the mean near
	// the censoring cap.
	if c.Likelihood(Negative, 1, 64) <= c.Likelihood(Negative, 64, 64) {
		t.Error("censoring probability should grow with dilution")
	}
}

func TestCtCleanPool(t *testing.T) {
	c := DefaultCt()
	if got := c.Likelihood(Negative, 0, 8); got != c.Spec {
		t.Errorf("P(neg|clean) = %v, want Spec", got)
	}
	// Contamination density integrates to 1-Spec over the window.
	inWindow := c.Likelihood(Outcome{Positive: true, Ct: c.MaxCycles - 1}, 0, 8)
	if math.Abs(inWindow*c.ContamWindow-(1-c.Spec)) > 1e-12 {
		t.Errorf("contamination density = %v", inWindow)
	}
	if got := c.Likelihood(Outcome{Positive: true, Ct: 20}, 0, 8); got != 0 {
		t.Errorf("early contamination Ct density = %v, want 0", got)
	}
}

func TestCtSampleCensoring(t *testing.T) {
	c := DefaultCt()
	r := rng.New(7)
	for i := 0; i < 5000; i++ {
		y := c.Sample(r, 1, 64)
		if y.Positive && (y.Ct > c.MaxCycles || y.Ct < 1) {
			t.Fatalf("sampled Ct %v outside (1, max]", y.Ct)
		}
	}
}

func TestCtPositiveBeyondCapImpossible(t *testing.T) {
	c := DefaultCt()
	if got := c.Likelihood(Outcome{Positive: true, Ct: c.MaxCycles + 1}, 2, 8); got != 0 {
		t.Errorf("density beyond cap = %v, want 0", got)
	}
}

func TestOutcomeString(t *testing.T) {
	if got := Negative.String(); got != "negative" {
		t.Errorf("Negative.String() = %q", got)
	}
	if got := Positive.String(); got != "positive" {
		t.Errorf("Positive.String() = %q", got)
	}
	if got := (Outcome{Positive: true, Ct: 33.25}).String(); got != "positive(Ct=33.2)" {
		t.Errorf("Ct outcome String() = %q", got)
	}
}

func TestNames(t *testing.T) {
	for _, m := range allModels() {
		if m.Name() == "" {
			t.Errorf("%T has empty name", m)
		}
	}
}
