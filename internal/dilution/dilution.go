// Package dilution models the response distribution of a pooled diagnostic
// test as a function of how many infected specimens the pool contains.
//
// The Bayesian lattice model needs, for every lattice state S and pool A,
// the likelihood of the observed outcome given that k = |S ∩ A| of the n
// pooled specimens are infected. Pooling dilutes viral material: a single
// positive among 31 negatives amplifies later than a pure positive, so
// sensitivity decays with the dilution ratio k/n. This package provides the
// response families used across the experiments, all behind one interface:
//
//   - Ideal: error-free binary test (the classical Dorfman setting)
//   - Binary: fixed sensitivity/specificity, no dilution dependence
//   - Hyperbolic: sensitivity decays as k/(k + d·(n−k)) (Hwang's model)
//   - Logistic: sensitivity is logistic in log concentration
//   - Subsample: each infected specimen is detected independently
//   - CtValue: continuous RT-PCR cycle-threshold outcome with censoring
//
// Every model is deterministic, safe for concurrent use (methods take no
// mutable receiver state), and samples only through an explicit rng.Source.
package dilution

import (
	"fmt"

	"repro/internal/rng"
)

// Outcome is the observable result of one pooled test.
//
// Binary models use only Positive. The continuous CtValue model also sets
// Ct when Positive (an amplification curve crossed the threshold); a
// negative outcome means the reaction was censored at the cycle cap.
type Outcome struct {
	Positive bool
	Ct       float64 // cycle-threshold reading; meaningful only when Positive
}

// Positive and Negative are the canonical binary outcomes.
var (
	Positive = Outcome{Positive: true}
	Negative = Outcome{Positive: false}
)

// String renders the outcome for logs.
func (o Outcome) String() string {
	if !o.Positive {
		return "negative"
	}
	if o.Ct != 0 { //lint:allow floats the zero value marks the Ct readout absent
		return fmt.Sprintf("positive(Ct=%.1f)", o.Ct)
	}
	return "positive"
}

// Response is the conditional distribution of a pooled test outcome given
// the pool composition.
//
// Likelihood returns the probability (for discrete outcomes) or density
// (for continuous ones) of outcome y when k of the n pooled specimens are
// infected. Implementations must accept k == 0 (a clean pool) and 1 <= n
// <= 64, and must be safe for concurrent use.
type Response interface {
	Likelihood(y Outcome, k, n int) float64
	Sample(r *rng.Source, k, n int) Outcome
	Name() string
}

// validate panics when a (k, n) pair violates the Response contract.
// Likelihood sits on the innermost lattice loop, so models call this only
// in Sample and rely on the engine's bounded inputs for Likelihood.
func validate(k, n int) {
	if n < 1 || n > 64 || k < 0 || k > n {
		panic(fmt.Sprintf("dilution: invalid pool composition k=%d n=%d", k, n))
	}
}

// Ideal is the error-free test: positive iff the pool contains any
// infected specimen. It is the baseline every experiment compares against.
type Ideal struct{}

// Likelihood implements Response.
func (Ideal) Likelihood(y Outcome, k, n int) float64 {
	if (k > 0) == y.Positive {
		return 1
	}
	return 0
}

// Sample implements Response.
func (Ideal) Sample(_ *rng.Source, k, n int) Outcome {
	validate(k, n)
	if k > 0 {
		return Positive
	}
	return Negative
}

// Name implements Response.
func (Ideal) Name() string { return "ideal" }

// Binary is a sensitivity/specificity test with no dilution dependence:
// any infected material triggers detection with probability Sens.
type Binary struct {
	Sens float64 // P(positive | k >= 1)
	Spec float64 // P(negative | k == 0)
}

// Likelihood implements Response.
func (b Binary) Likelihood(y Outcome, k, n int) float64 {
	var pPos float64
	if k > 0 {
		pPos = b.Sens
	} else {
		pPos = 1 - b.Spec
	}
	if y.Positive {
		return pPos
	}
	return 1 - pPos
}

// Sample implements Response.
func (b Binary) Sample(r *rng.Source, k, n int) Outcome {
	validate(k, n)
	var pPos float64
	if k > 0 {
		pPos = b.Sens
	} else {
		pPos = 1 - b.Spec
	}
	if r.Bernoulli(pPos) {
		return Positive
	}
	return Negative
}

// Name implements Response.
func (b Binary) Name() string { return fmt.Sprintf("binary(se=%.3g,sp=%.3g)", b.Sens, b.Spec) }
