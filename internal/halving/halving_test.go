package halving

import (
	"math"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/dilution"
	"repro/internal/engine"
	"repro/internal/lattice"
	"repro/internal/rng"
)

func newModel(t *testing.T, risks []float64, resp dilution.Response) *lattice.Model {
	t.Helper()
	pool := engine.NewPool(4)
	t.Cleanup(pool.Close)
	m, err := lattice.New(pool, lattice.Config{Risks: risks, Response: resp})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func uniform(n int, p float64) []float64 {
	rs := make([]float64, n)
	for i := range rs {
		rs[i] = p
	}
	return rs
}

func TestSelectSplitsUniformPrior(t *testing.T) {
	// With risk 0.5 each, P(pool of size 1 clean) = 0.5 exactly: the
	// perfect split is a single subject.
	m := newModel(t, uniform(8, 0.5), dilution.Ideal{})
	sel := Select(m, Options{})
	if sel.Pool.Count() != 1 {
		t.Fatalf("selected %v, want a singleton", sel.Pool)
	}
	if math.Abs(sel.NegMass-0.5) > 1e-12 || sel.Score > 1e-12 {
		t.Fatalf("split quality: negmass=%v score=%v", sel.NegMass, sel.Score)
	}
}

func TestSelectLowPrevalencePoolsWide(t *testing.T) {
	// Low risk: (1-p)^k crosses 1/2 around k = ln2/p; halving should pick
	// a pool of about that size.
	p := 0.05
	m := newModel(t, uniform(20, p), dilution.Ideal{})
	sel := Select(m, Options{})
	want := math.Ln2 / p // ≈ 13.9 — with discrete sizes, 13 or 14
	if got := float64(sel.Pool.Count()); math.Abs(got-want) > 1.0 {
		t.Fatalf("pool size %v, want ≈ %.1f", got, want)
	}
	if sel.Score > 0.05 {
		t.Fatalf("split score %v too far from 1/2", sel.Score)
	}
}

func TestSelectRespectsMaxPool(t *testing.T) {
	m := newModel(t, uniform(20, 0.02), dilution.Ideal{})
	sel := Select(m, Options{MaxPool: 8})
	if sel.Pool.Count() > 8 {
		t.Fatalf("pool %v exceeds MaxPool", sel.Pool)
	}
	// Unconstrained, the same prior wants a much larger pool.
	selFree := Select(m, Options{})
	if selFree.Pool.Count() <= 8 {
		t.Fatalf("unconstrained pool only %d wide", selFree.Pool.Count())
	}
}

func TestSelectPrefersHighRiskSubjects(t *testing.T) {
	// One very high-risk subject: it alone is the best ~1/2 split.
	risks := uniform(10, 0.01)
	risks[7] = 0.5
	m := newModel(t, risks, dilution.Ideal{})
	sel := Select(m, Options{})
	if !sel.Pool.Has(7) {
		t.Fatalf("selection %v ignores the risky subject", sel.Pool)
	}
}

func TestSelectDeterministic(t *testing.T) {
	m := newModel(t, uniform(12, 0.08), dilution.Ideal{})
	first := Select(m, Options{LocalSearch: true})
	for i := 0; i < 5; i++ {
		if got := Select(m, Options{LocalSearch: true}); got.Pool != first.Pool {
			t.Fatalf("run %d selected %v, first run %v", i, got.Pool, first.Pool)
		}
	}
}

func TestLocalSearchNeverWorse(t *testing.T) {
	// Construct a correlated posterior where prefix pools are suboptimal:
	// after a positive on {0,1}, mass concentrates on states containing 0
	// or 1.
	m := newModel(t, uniform(10, 0.1), dilution.Binary{Sens: 0.95, Spec: 0.98})
	if err := m.Update(bitvec.FromIndices(0, 1), dilution.Positive); err != nil {
		t.Fatal(err)
	}
	plain := Select(m, Options{})
	ls := Select(m, Options{LocalSearch: true})
	if ls.Score > plain.Score+1e-15 {
		t.Fatalf("local search worsened score: %v -> %v", plain.Score, ls.Score)
	}
	if ls.Scanned <= plain.Scanned {
		t.Fatalf("local search scanned %d <= plain %d", ls.Scanned, plain.Scanned)
	}
}

func TestSelectOnCertainPosterior(t *testing.T) {
	// Drive the posterior to near-certainty, then ask for a selection:
	// it must still return a nonempty pool without panicking.
	m := newModel(t, uniform(4, 0.3), dilution.Ideal{})
	for _, i := range []int{0, 1, 2, 3} {
		if err := m.Update(bitvec.FromIndices(i), dilution.Negative); err != nil {
			t.Fatal(err)
		}
	}
	sel := Select(m, Options{})
	if sel.Pool == 0 {
		t.Fatal("empty selection on certain posterior")
	}
}

func TestSelectionString(t *testing.T) {
	s := Selection{Pool: bitvec.FromIndices(1, 2), NegMass: 0.5, Scanned: 3}
	if got := s.String(); got == "" {
		t.Error("empty Selection.String()")
	}
}

func TestHalvingReducesEntropyFasterThanRandom(t *testing.T) {
	// Run 6 selection/update rounds with simulated truth and compare
	// entropy trajectories. Halving must dominate random pooling.
	run := func(strat Strategy, seed uint64) float64 {
		m := newModel(t, uniform(10, 0.15), dilution.Ideal{})
		r := rng.New(seed)
		truth := bitvec.Mask(0)
		for i := 0; i < 10; i++ {
			if r.Bernoulli(0.15) {
				truth = truth.With(i)
			}
		}
		for round := 0; round < 6; round++ {
			pool, err := strat.Next(Dense(m))
			if err != nil {
				t.Fatalf("%s: %v", strat.Name(), err)
			}
			k := truth.IntersectCount(pool)
			y := m.Response().Sample(r, k, pool.Count())
			if err := m.Update(pool, y); err != nil {
				t.Fatalf("%s: %v", strat.Name(), err)
			}
		}
		return m.Entropy()
	}
	var hSum, rSum float64
	const reps = 10
	for rep := uint64(0); rep < reps; rep++ {
		hSum += run(Halving{}, rep)
		rSum += run(Random{Size: 5, Rng: rng.New(1000 + rep)}, rep)
	}
	if hSum/reps >= rSum/reps {
		t.Fatalf("halving mean entropy %.3f not below random %.3f", hSum/reps, rSum/reps)
	}
}

func TestExpectedEntropyAfterIsReduction(t *testing.T) {
	m := newModel(t, uniform(8, 0.2), dilution.Ideal{})
	before := m.Entropy()
	sel := Select(m, Options{})
	after := ExpectedEntropyAfter(m, sel.Pool)
	if after >= before {
		t.Fatalf("expected entropy %v did not drop from %v", after, before)
	}
	// A near-perfect split removes close to one bit.
	if before-after < 0.5 {
		t.Fatalf("halving removed only %v bits in expectation", before-after)
	}
}

func TestSelectLookaheadDepths(t *testing.T) {
	m := newModel(t, uniform(10, 0.1), dilution.Ideal{})
	sels := SelectLookahead(m, 3, Options{MaxPool: 6})
	if len(sels) != 3 {
		t.Fatalf("got %d selections, want 3", len(sels))
	}
	for i, s := range sels {
		if s.Pool == 0 {
			t.Fatalf("selection %d empty", i)
		}
		if s.Pool.Count() > 6 {
			t.Fatalf("selection %d exceeds MaxPool: %v", i, s.Pool)
		}
	}
	// Depth 1 equals plain halving.
	one := SelectLookahead(m, 1, Options{MaxPool: 6})
	plain := Select(m, Options{MaxPool: 6})
	if one[0].Pool != plain.Pool {
		t.Fatalf("lookahead depth 1 chose %v, plain %v", one[0].Pool, plain.Pool)
	}
	// Invalid depth coerces to 1.
	if got := SelectLookahead(m, 0, Options{}); len(got) != 1 {
		t.Fatalf("depth 0 returned %d selections", len(got))
	}
}

func TestSelectLookaheadDistinctStagePools(t *testing.T) {
	// Look-ahead pools in the same stage should not be identical: a
	// repeated pool answers a question already asked.
	m := newModel(t, uniform(12, 0.15), dilution.Ideal{})
	sels := SelectLookahead(m, 2, Options{})
	if sels[0].Pool == sels[1].Pool {
		t.Fatalf("stage repeats pool %v", sels[0].Pool)
	}
}

func TestRandomStrategy(t *testing.T) {
	m := newModel(t, uniform(9, 0.2), dilution.Ideal{})
	r := Random{Size: 4, Rng: rng.New(5)}
	p, err := r.Next(Dense(m))
	if err != nil {
		t.Fatal(err)
	}
	if p.Count() != 4 {
		t.Fatalf("random pool size %d", p.Count())
	}
	if !p.SubsetOf(bitvec.Full(9)) {
		t.Fatalf("random pool %v outside cohort", p)
	}
	// Default size when Size invalid.
	r2 := Random{Rng: rng.New(5)}
	p2, err := r2.Next(Dense(m))
	if err != nil {
		t.Fatal(err)
	}
	if got := p2.Count(); got != 5 {
		t.Fatalf("default random size %d, want (n+1)/2", got)
	}
}

func TestIndividualStrategy(t *testing.T) {
	risks := []float64{0.1, 0.48, 0.9}
	m := newModel(t, risks, dilution.Ideal{})
	p, err := Individual{}.Next(Dense(m))
	if err != nil {
		t.Fatal(err)
	}
	if p != bitvec.FromIndices(1) {
		t.Fatalf("individual chose %v, want subject 1 (closest to 1/2)", p)
	}
	if p.Count() != 1 {
		t.Fatal("individual pool not singleton")
	}
}

func TestDorfmanCyclesBlocks(t *testing.T) {
	m := newModel(t, uniform(10, 0.1), dilution.Ideal{})
	d := &Dorfman{BlockSize: 4}
	seen := bitvec.Mask(0)
	for i := 0; i < 3; i++ {
		p, err := d.Next(Dense(m))
		if err != nil {
			t.Fatal(err)
		}
		if p.Count() == 0 || p.Count() > 4 {
			t.Fatalf("block %d size %d", i, p.Count())
		}
		seen = seen.Join(p)
	}
	// Three blocks of 4 over 10 subjects wrap and cover everyone.
	if seen != bitvec.Full(10) {
		t.Fatalf("blocks covered %v", seen)
	}
}

func TestStrategyNames(t *testing.T) {
	m := newModel(t, uniform(4, 0.2), dilution.Ideal{})
	_ = m
	for _, s := range []Strategy{Halving{}, Halving{Opts: Options{LocalSearch: true}}, Random{Size: 2, Rng: rng.New(1)}, Individual{}, &Dorfman{BlockSize: 2}} {
		if s.Name() == "" {
			t.Errorf("%T has empty name", s)
		}
	}
}
