package halving

import (
	"math"

	"repro/internal/bitvec"
	"repro/internal/dilution"
	"repro/internal/lattice"
)

// SelectLookahead chooses depth pools to run *in the same stage*, before
// any of their outcomes is known — the look-ahead rules of the companion
// paper, which trade a few extra tests for fewer sequential stages (each
// stage is a lab round-trip).
//
// The rule is greedy-marginal: the first pool is the plain halving choice;
// pool t+1 is the halving choice on the *predictive mixture* over the 2^t
// outcome combinations of the already-chosen pools, i.e. it must split well
// in expectation across everything the earlier tests might say. The mixture
// is evaluated exactly by enumerating outcome vectors on cloned models,
// weighting each clone by its predictive probability.
//
// Only binary-outcome responses can be enumerated this way; continuous
// responses (CtValue) fall back to their positive/negative dichotomy, which
// is the information the halving criterion consumes anyway.
func SelectLookahead(m *lattice.Model, depth int, opts Options) []Selection {
	if depth < 1 {
		depth = 1
	}
	n := m.N()
	maxPool := opts.MaxPool
	if maxPool <= 0 || maxPool > n {
		maxPool = n
	}

	// branches holds the outcome-conditioned models with their predictive
	// weights; it starts as the single unconditioned posterior.
	type branch struct {
		model  *lattice.Model
		weight float64
	}
	branches := []branch{{model: m, weight: 1}}
	selections := make([]Selection, 0, depth)

	for t := 0; t < depth; t++ {
		// Candidate pools come from the mixture marginals; keep each
		// branch's marginals for the singleton fast path below.
		branchMarg := make([][]float64, len(branches))
		marg := make([]float64, n)
		for bi, b := range branches {
			bm := b.model.Marginals()
			branchMarg[bi] = bm
			for i := range marg {
				marg[i] += b.weight * bm[i]
			}
		}
		order := prefixOrder(marg, maxPool)

		// Build the shared candidate list (nested prefixes + singletons,
		// deduped at the size-1 prefix) and score it per branch with the
		// same two-pass trick Select uses: one PrefixNegMasses histogram
		// pass per branch, singleton masses free from that branch's
		// marginals. Scores mix by predictive weight:
		// Σ_b w_b · |P_b(clean) − ½|.
		var cands []bitvec.Mask
		var firstPrefix bitvec.Mask
		var prefix bitvec.Mask
		for _, subj := range order {
			prefix = prefix.With(subj)
			cands = append(cands, prefix)
		}
		if len(cands) > 0 {
			firstPrefix = cands[0]
		}
		singletonStart := len(cands)
		for i := 0; i < n; i++ {
			if c := bitvec.FromIndices(i); c != firstPrefix {
				cands = append(cands, c)
			}
		}
		scores := make([]float64, len(cands))
		negUnderMix := make([]float64, len(cands))
		for bi, b := range branches {
			var prefixMass []float64
			if len(order) > 0 {
				prefixMass = b.model.PrefixNegMasses(order)
			}
			ci := 0
			for ; ci < singletonStart; ci++ {
				mass := prefixMass[ci]
				scores[ci] += b.weight * math.Abs(mass-0.5)
				negUnderMix[ci] += b.weight * mass
			}
			for ; ci < len(cands); ci++ {
				mass := 1 - branchMarg[bi][cands[ci].Lowest()]
				scores[ci] += b.weight * math.Abs(mass-0.5)
				negUnderMix[ci] += b.weight * mass
			}
		}
		best := Selection{Score: math.Inf(1)}
		for i, c := range cands {
			if scores[i] < best.Score ||
				//lint:allow floats exact equality is the deterministic argmin tie-break
				(scores[i] == best.Score && c.Count() < best.Pool.Count()) {
				best = Selection{Pool: c, NegMass: negUnderMix[i], Score: scores[i], Scanned: len(cands) * len(branches)}
			}
		}
		selections = append(selections, best)
		if t == depth-1 {
			break
		}

		// Expand every branch by the two outcomes of the chosen pool.
		next := make([]branch, 0, 2*len(branches))
		for _, b := range branches {
			for _, y := range []dilution.Outcome{dilution.Negative, dilution.Positive} {
				w := b.model.Predictive(best.Pool, y)
				if w*b.weight < 1e-12 {
					continue // outcome (near-)impossible on this branch
				}
				c := b.model.Clone()
				if err := c.Update(best.Pool, y); err != nil {
					continue
				}
				next = append(next, branch{model: c, weight: b.weight * w})
			}
		}
		if len(next) == 0 {
			break // posterior is degenerate; no further look-ahead possible
		}
		branches = next
	}
	return selections
}

// ExpectedEntropyAfter returns the expected posterior entropy (bits) after
// observing the binary outcome of a test on pool: Σ_y P(y)·H(π | y). It is
// the information-theoretic yardstick experiment F4 tracks alongside the
// halving score, and is exact for binary responses.
func ExpectedEntropyAfter(m *lattice.Model, pool bitvec.Mask) float64 {
	var expected float64
	for _, y := range []dilution.Outcome{dilution.Negative, dilution.Positive} {
		w := m.Predictive(pool, y)
		if w < 1e-15 {
			continue
		}
		c := m.Clone()
		if err := c.Update(pool, y); err != nil {
			continue
		}
		expected += w * c.Entropy()
	}
	return expected
}
