package halving

import (
	"testing"

	"repro/internal/bitvec"
	"repro/internal/dilution"
	"repro/internal/engine"
	"repro/internal/lattice"
)

func benchModel(b *testing.B, n int) *lattice.Model {
	b.Helper()
	pool := engine.NewPool(0)
	b.Cleanup(pool.Close)
	risks := make([]float64, n)
	for i := range risks {
		risks[i] = 0.06
	}
	m, err := lattice.New(pool, lattice.Config{Risks: risks, Response: dilution.Binary{Sens: 0.95, Spec: 0.99}})
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Update(bitvec.Full(n/2), dilution.Positive); err != nil {
		b.Fatal(err)
	}
	return m
}

func BenchmarkSelect(b *testing.B) {
	m := benchModel(b, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Select(m, Options{MaxPool: 16})
	}
}

func BenchmarkSelectLocalSearch(b *testing.B) {
	m := benchModel(b, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Select(m, Options{MaxPool: 16, LocalSearch: true})
	}
}

func BenchmarkLookahead2(b *testing.B) {
	m := benchModel(b, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SelectLookahead(m, 2, Options{MaxPool: 8})
	}
}
