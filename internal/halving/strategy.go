package halving

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/rng"
)

// Strategy chooses the next pool to test given the current posterior.
// Implementations must return a nonempty pool within the cohort; the
// surveillance loop treats the returned pool as the next physical test.
// Next consumes the fallible Posterior surface, so every strategy runs
// unchanged on the dense, sparse, and cluster backends; a non-nil error
// is a failed posterior read, not a selection outcome.
type Strategy interface {
	Next(m Posterior) (bitvec.Mask, error)
	Name() string
}

// Halving is the Bayesian Halving Algorithm as a Strategy.
type Halving struct {
	Opts Options
}

// Next implements Strategy.
func (h Halving) Next(m Posterior) (bitvec.Mask, error) {
	sel, err := SelectOn(m, h.Opts)
	if err != nil {
		return 0, err
	}
	return sel.Pool, nil
}

// Name implements Strategy.
func (h Halving) Name() string {
	if h.Opts.LocalSearch {
		return "halving+ls"
	}
	return "halving"
}

// Random tests a uniformly random pool of fixed size — the uninformed
// comparison arm in the convergence experiment. It is deterministic for a
// fixed Source.
type Random struct {
	Size int
	Rng  *rng.Source
}

// Next implements Strategy.
func (r Random) Next(m Posterior) (bitvec.Mask, error) {
	n := m.N()
	size := r.Size
	if size <= 0 || size > n {
		size = (n + 1) / 2
	}
	perm := r.Rng.Perm(n)
	var pool bitvec.Mask
	for _, i := range perm[:size] {
		pool = pool.With(i)
	}
	return pool, nil
}

// Name implements Strategy.
func (r Random) Name() string { return fmt.Sprintf("random-%d", r.Size) }

// Individual always tests a single subject: the one whose marginal is
// closest to ½ (the most informative individual test). With every pool of
// size one, it is the no-pooling baseline group testing is measured
// against.
type Individual struct{}

// Next implements Strategy.
func (Individual) Next(m Posterior) (bitvec.Mask, error) {
	marg, err := m.Marginals()
	if err != nil {
		return 0, err
	}
	best, bestDist := 0, 2.0
	for i, g := range marg {
		d := g - 0.5
		if d < 0 {
			d = -d
		}
		if d < bestDist {
			best, bestDist = i, d
		}
	}
	return bitvec.FromIndices(best), nil
}

// Name implements Strategy.
func (Individual) Name() string { return "individual" }

// Dorfman cycles through fixed disjoint blocks of the cohort, the classic
// two-stage pooling design: it ignores the posterior when choosing blocks,
// so the gap between it and Halving isolates the value of adaptivity.
type Dorfman struct {
	BlockSize int
	next      int
}

// Next implements Strategy. It returns the next block in round-robin
// order, sized BlockSize (last block may be smaller).
func (d *Dorfman) Next(m Posterior) (bitvec.Mask, error) {
	n := m.N()
	bs := d.BlockSize
	if bs <= 0 || bs > n {
		bs = n
	}
	start := d.next % n
	var pool bitvec.Mask
	for i := 0; i < bs; i++ {
		pool = pool.With((start + i) % n)
	}
	d.next = (start + bs) % n
	return pool, nil
}

// Name implements Strategy.
func (d *Dorfman) Name() string { return fmt.Sprintf("dorfman-%d", d.BlockSize) }
