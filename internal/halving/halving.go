// Package halving implements the Bayesian Halving Algorithm and its
// look-ahead extensions — SBGT's test-selection kernel.
//
// The halving rule is the lattice-order analogue of binary search: among
// admissible pools A, pick the one whose clean-pool posterior mass
// P(S ∩ A = ∅ | data) is closest to ½, so that either outcome of the test
// removes close to one bit of classification uncertainty. The Biostatistics
// companion paper proves this rule converges at an optimal exponential rate
// even under strong dilution.
//
// Candidate generation exploits the order structure: subjects are ranked by
// marginal posterior risk, and the nested prefix pools of that ranking
// sweep the clean mass monotonically from P(top-1 clean) down toward 0, so
// the ½-crossing is bracketed by two adjacent prefixes. All prefixes are
// scored by ONE histogram pass (PrefixNegMasses) and the singleton
// fallbacks for free from the marginals — two lattice passes total,
// independent of the candidate count. An optional local search then
// perturbs the winning pool one subject at a time (one batched NegMasses
// sweep).
//
// The package also provides the comparison strategies the evaluation plots
// against (random pools, individual testing, Dorfman blocks) behind one
// Strategy interface.
package halving

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/bitvec"
	"repro/internal/lattice"
)

// Options tunes the halving selector.
type Options struct {
	// MaxPool caps the number of specimens mixed into one physical test.
	// Assay dilution limits make this 8–32 in practice. <= 0 means N.
	MaxPool int
	// LocalSearch enables the single-swap refinement pass around the best
	// prefix pool (the A3 ablation toggles this).
	LocalSearch bool
}

// Selection describes one chosen pool.
type Selection struct {
	Pool    bitvec.Mask // subjects to mix into the test
	NegMass float64     // P(pool clean | data) at selection time
	Score   float64     // |NegMass − ½|; lower is a better split
	Scanned int         // candidate pools evaluated
}

// Posterior is the read surface the halving algorithm needs. It is
// fallible: backends whose reads can fail (the TCP cluster driver) report
// transport errors directly instead of smuggling them through panics, and
// infallible backends (dense lattice, truncated sparse) simply always
// return nil errors. posterior.Model satisfies this interface, as does the
// cluster driver; wrap a bare *lattice.Model with Dense.
type Posterior interface {
	N() int
	Marginals() ([]float64, error)
	NegMasses(cands []bitvec.Mask) ([]float64, error)
	PrefixNegMasses(order []int) ([]float64, error)
}

// denseAdapter lifts the infallible *lattice.Model onto the fallible
// Posterior surface. Its errors are always nil.
type denseAdapter struct{ m *lattice.Model }

func (d denseAdapter) N() int                        { return d.m.N() }
func (d denseAdapter) Marginals() ([]float64, error) { return d.m.Marginals(), nil }
func (d denseAdapter) NegMasses(cands []bitvec.Mask) ([]float64, error) {
	return d.m.NegMasses(cands), nil
}
func (d denseAdapter) PrefixNegMasses(order []int) ([]float64, error) {
	return d.m.PrefixNegMasses(order), nil
}

// Dense exposes a dense lattice model as a Posterior (all errors nil).
func Dense(m *lattice.Model) Posterior { return denseAdapter{m} }

// Select runs the Bayesian Halving Algorithm on a dense lattice model.
// It never returns an empty pool; for a fully certain posterior it
// returns the best available split even though that split is far from ½.
func Select(m *lattice.Model, opts Options) Selection {
	sel, err := SelectOn(denseAdapter{m}, opts)
	if err != nil {
		// The dense adapter never reports errors; reaching this is a bug.
		panic(fmt.Sprintf("halving: dense selection failed: %v", err))
	}
	return sel
}

// SelectOn runs the Bayesian Halving Algorithm on any Posterior. A non-nil
// error is a failed posterior read (e.g. a lost executor), not a selection
// quality problem; the returned Selection is zero in that case.
func SelectOn(m Posterior, opts Options) (Selection, error) {
	n := m.N()
	maxPool := opts.MaxPool
	if maxPool <= 0 || maxPool > n {
		maxPool = n
	}

	marg, err := m.Marginals()
	if err != nil {
		return Selection{}, fmt.Errorf("halving: marginals: %w", err)
	}
	order := prefixOrder(marg, maxPool)
	cands, masses, err := scoreCandidates(m, marg, order)
	if err != nil {
		return Selection{}, err
	}
	best := pickBest(cands, masses)
	best.Scanned = len(cands)

	if opts.LocalSearch {
		best, err = localSearch(m, best, maxPool)
		if err != nil {
			return Selection{}, err
		}
	}
	return best, nil
}

// prefixOrder ranks the pool-eligible subjects for prefix candidates.
//
// A pool is clean only if every member is negative, so its clean mass is
// bounded above by 1 − max_{i∈A} marginal_i: subjects with marginal ≥ ½
// can never appear in a pool that splits at ½. The prefix order is the
// sub-½ subjects ranked by marginal descending (each added member moves
// the clean mass down the most per specimen), capped at the pool-size
// limit. Ties break by index so selection is deterministic.
func prefixOrder(marg []float64, maxPool int) []int {
	order := make([]int, 0, len(marg))
	for i := range marg {
		if marg[i] < 0.5 {
			order = append(order, i)
		}
	}
	sort.SliceStable(order, func(a, b int) bool {
		if marg[order[a]] != marg[order[b]] { //lint:allow floats exact inequality is a deterministic sort tie-break, not a numeric test
			return marg[order[a]] > marg[order[b]]
		}
		return order[a] < order[b]
	})
	if len(order) > maxPool {
		order = order[:maxPool]
	}
	return order
}

// scoreCandidates produces the candidate pools and their clean masses
// using two lattice passes total, independent of the candidate count:
// the nested prefixes of order come from one PrefixNegMasses histogram
// pass, and every singleton's clean mass is 1 − marginal (free, from the
// marginals already in hand). Singletons keep selection sane when all
// subjects are already probably-positive. The only possible duplicate —
// the size-1 prefix — is skipped in the singleton sweep.
func scoreCandidates(m Posterior, marg []float64, order []int) ([]bitvec.Mask, []float64, error) {
	n := len(marg)
	cands := make([]bitvec.Mask, 0, len(order)+n)
	masses := make([]float64, 0, len(order)+n)
	var firstPrefix bitvec.Mask
	if len(order) > 0 {
		prefixMass, err := m.PrefixNegMasses(order)
		if err != nil {
			return nil, nil, fmt.Errorf("halving: prefix scan: %w", err)
		}
		var prefix bitvec.Mask
		for i, subj := range order {
			prefix = prefix.With(subj)
			cands = append(cands, prefix)
			masses = append(masses, prefixMass[i])
		}
		firstPrefix = cands[0]
	}
	for i := 0; i < n; i++ {
		c := bitvec.FromIndices(i)
		if c == firstPrefix {
			continue
		}
		cands = append(cands, c)
		masses = append(masses, 1-marg[i])
	}
	return cands, masses, nil
}

// pickBest returns the candidate whose neg-mass is closest to ½; ties
// resolve to the smaller pool (cheaper test), then lower mask.
func pickBest(cands []bitvec.Mask, masses []float64) Selection {
	best := Selection{Score: math.Inf(1)}
	for i, c := range cands {
		score := math.Abs(masses[i] - 0.5)
		if score < best.Score ||
			//lint:allow floats exact equality is the deterministic argmin tie-break
			(score == best.Score && (c.Count() < best.Pool.Count() ||
				(c.Count() == best.Pool.Count() && c < best.Pool))) {
			best = Selection{Pool: c, NegMass: masses[i], Score: score}
		}
	}
	return best
}

// localSearch tries replacing each member of the incumbent pool with each
// non-member (bounded swap neighbourhood), plus single additions and
// removals within the pool-size cap, accepting the best improvement. One
// round only: the prefix seed is already near the optimum, and each round
// costs a full lattice sweep.
func localSearch(m Posterior, best Selection, maxPool int) (Selection, error) {
	n := m.N()
	var cands []bitvec.Mask
	// Additions.
	if best.Pool.Count() < maxPool {
		for i := 0; i < n; i++ {
			if !best.Pool.Has(i) {
				cands = append(cands, best.Pool.With(i))
			}
		}
	}
	// Removals.
	if best.Pool.Count() > 1 {
		for _, i := range best.Pool.Indices() {
			cands = append(cands, best.Pool.Without(i))
		}
	}
	// Swaps.
	for _, out := range best.Pool.Indices() {
		for in := 0; in < n; in++ {
			if !best.Pool.Has(in) {
				cands = append(cands, best.Pool.Without(out).With(in))
			}
		}
	}
	if len(cands) == 0 {
		return best, nil
	}
	masses, err := m.NegMasses(cands)
	if err != nil {
		return Selection{}, fmt.Errorf("halving: candidate scan: %w", err)
	}
	cand := pickBest(cands, masses)
	cand.Scanned = best.Scanned + len(cands)
	if cand.Score < best.Score {
		return cand, nil
	}
	best.Scanned = cand.Scanned
	return best, nil
}

// String renders a selection for logs.
func (s Selection) String() string {
	return fmt.Sprintf("pool %v (|A|=%d, clean mass %.4f, scanned %d)", s.Pool, s.Pool.Count(), s.NegMass, s.Scanned)
}
