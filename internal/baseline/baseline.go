// Package baseline is the serial reference implementation of Bayesian
// lattice group testing, standing in for HiBGT — the predecessor framework
// SBGT's evaluation compares against.
//
// It computes the same posterior as internal/lattice but is engineered the
// way a pre-SBGT research code is: one flat slice, a likelihood *function
// call* per state instead of a precomputed table, separate full passes for
// reweighting and normalization, one pass per subject for marginals, and
// one pass per candidate pool during selection. Nothing here is parallel.
//
// The package serves two purposes: it is the comparison arm for every
// speedup table (T1–T3), and it cross-validates the engine-backed model —
// the tests assert both implementations produce the same posterior to
// floating-point tolerance on randomized scenarios.
package baseline

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"repro/internal/bitvec"
	"repro/internal/dilution"
)

// Model is the serial lattice model. It is not safe for concurrent use.
type Model struct {
	n     int
	risks []float64
	resp  dilution.Response
	post  []float64
	tests int
}

// MaxSubjects mirrors the engine-backed model's bound.
const MaxSubjects = 30

// New builds the prior product measure serially, state by state, with the
// O(N)-per-state inner product a straightforward implementation uses.
func New(risks []float64, resp dilution.Response) (*Model, error) {
	n := len(risks)
	if n == 0 {
		return nil, fmt.Errorf("baseline: empty cohort")
	}
	if n > MaxSubjects {
		return nil, fmt.Errorf("baseline: cohort size %d exceeds max %d", n, MaxSubjects)
	}
	if resp == nil {
		return nil, fmt.Errorf("baseline: nil response model")
	}
	for i, p := range risks {
		if !(p > 0 && p < 1) {
			return nil, fmt.Errorf("baseline: risk[%d] = %v outside (0,1)", i, p)
		}
	}
	m := &Model{
		n:     n,
		risks: append([]float64(nil), risks...),
		resp:  resp,
		post:  make([]float64, uint64(1)<<uint(n)),
	}
	for s := range m.post {
		w := 1.0
		for i := 0; i < n; i++ {
			if s&(1<<uint(i)) != 0 {
				w *= risks[i]
			} else {
				w *= 1 - risks[i]
			}
		}
		m.post[s] = w
	}
	m.normalize()
	return m, nil
}

// N returns the cohort size.
func (m *Model) N() int { return m.n }

// Tests returns how many outcomes have been absorbed.
func (m *Model) Tests() int { return m.tests }

// Response returns the test-response model.
func (m *Model) Response() dilution.Response { return m.resp }

// StateMass returns the posterior mass of one state.
func (m *Model) StateMass(s bitvec.Mask) float64 { return m.post[uint64(s)] }

func (m *Model) normalize() {
	var total float64
	for _, w := range m.post {
		total += w
	}
	if !(total > 0) || math.IsInf(total, 0) {
		return
	}
	inv := 1 / total
	for i := range m.post {
		m.post[i] *= inv
	}
}

// Update folds one pooled-test outcome into the posterior: a reweight pass
// calling the response model per state, then a separate normalize pass.
func (m *Model) Update(pool bitvec.Mask, y dilution.Outcome) error {
	if pool == 0 {
		return fmt.Errorf("baseline: empty pool")
	}
	if !pool.SubsetOf(bitvec.Full(m.n)) {
		return fmt.Errorf("baseline: pool %v outside cohort of %d", pool, m.n)
	}
	size := pool.Count()
	pm := uint64(pool)
	for s := range m.post {
		k := bits.OnesCount64(uint64(s) & pm)
		m.post[s] *= m.resp.Likelihood(y, k, size)
	}
	var total float64
	for _, w := range m.post {
		total += w
	}
	if !(total > 0) || math.IsInf(total, 0) {
		return fmt.Errorf("baseline: outcome %v on pool %v has zero total likelihood", y, pool)
	}
	inv := 1 / total
	for s := range m.post {
		m.post[s] *= inv
	}
	m.tests++
	return nil
}

// Marginals computes each subject's posterior infection probability with
// one full lattice pass per subject.
func (m *Model) Marginals() []float64 {
	out := make([]float64, m.n)
	for i := 0; i < m.n; i++ {
		bit := uint64(1) << uint(i)
		var sum float64
		for s, w := range m.post {
			if uint64(s)&bit != 0 {
				sum += w
			}
		}
		out[i] = sum
	}
	return out
}

// NegMass returns P(S ∩ pool = ∅ | data) with one lattice pass.
func (m *Model) NegMass(pool bitvec.Mask) float64 {
	pm := uint64(pool)
	var sum float64
	for s, w := range m.post {
		if uint64(s)&pm == 0 {
			sum += w
		}
	}
	return sum
}

// NegMasses evaluates each candidate with its own full lattice pass —
// the pre-SBGT selection cost the T2 experiment measures.
func (m *Model) NegMasses(cands []bitvec.Mask) []float64 {
	out := make([]float64, len(cands))
	for i, c := range cands {
		out[i] = m.NegMass(c)
	}
	return out
}

// Entropy returns the posterior entropy in bits.
func (m *Model) Entropy() float64 {
	var nats float64
	for _, p := range m.post {
		if p > 0 {
			nats -= p * math.Log(p)
		}
	}
	return nats / math.Ln2
}

// SelectHalving runs the Bayesian Halving Algorithm serially with the same
// candidate rule as internal/halving (sub-½ prefix pools plus singletons),
// so baseline-vs-SBGT selection benchmarks do identical statistical work.
func (m *Model) SelectHalving(maxPool int) bitvec.Mask {
	if maxPool <= 0 || maxPool > m.n {
		maxPool = m.n
	}
	marg := m.Marginals()
	order := make([]int, 0, m.n)
	for i := range marg {
		if marg[i] < 0.5 {
			order = append(order, i)
		}
	}
	sort.SliceStable(order, func(a, b int) bool {
		if marg[order[a]] != marg[order[b]] { //lint:allow floats exact inequality is a deterministic sort tie-break, not a numeric test
			return marg[order[a]] > marg[order[b]]
		}
		return order[a] < order[b]
	})
	if len(order) > maxPool {
		order = order[:maxPool]
	}
	seen := make(map[bitvec.Mask]bool)
	var cands []bitvec.Mask
	var prefix bitvec.Mask
	for _, i := range order {
		prefix = prefix.With(i)
		if !seen[prefix] {
			seen[prefix] = true
			cands = append(cands, prefix)
		}
	}
	for i := 0; i < m.n; i++ {
		c := bitvec.FromIndices(i)
		if !seen[c] {
			seen[c] = true
			cands = append(cands, c)
		}
	}
	masses := m.NegMasses(cands)
	best, bestScore := bitvec.Mask(0), math.Inf(1)
	for i, c := range cands {
		score := math.Abs(masses[i] - 0.5)
		if score < bestScore ||
			//lint:allow floats exact equality is the deterministic argmin tie-break
			(score == bestScore && (c.Count() < best.Count() || (c.Count() == best.Count() && c < best))) {
			best, bestScore = c, score
		}
	}
	return best
}

// Clone returns an independent deep copy.
func (m *Model) Clone() *Model {
	return &Model{
		n:     m.n,
		risks: append([]float64(nil), m.risks...),
		resp:  m.resp,
		post:  append([]float64(nil), m.post...),
		tests: m.tests,
	}
}
