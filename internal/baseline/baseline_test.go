package baseline

import (
	"math"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/dilution"
	"repro/internal/engine"
	"repro/internal/halving"
	"repro/internal/lattice"
	"repro/internal/rng"
)

func uniform(n int, p float64) []float64 {
	rs := make([]float64, n)
	for i := range rs {
		rs[i] = p
	}
	return rs
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, dilution.Ideal{}); err == nil {
		t.Error("empty cohort accepted")
	}
	if _, err := New(uniform(31, 0.1), dilution.Ideal{}); err == nil {
		t.Error("oversized cohort accepted")
	}
	if _, err := New(uniform(4, 0.1), nil); err == nil {
		t.Error("nil response accepted")
	}
	if _, err := New([]float64{0.5, 1}, dilution.Ideal{}); err == nil {
		t.Error("risk 1 accepted")
	}
}

func TestUpdateErrors(t *testing.T) {
	m, err := New(uniform(4, 0.2), dilution.Ideal{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Update(0, dilution.Positive); err == nil {
		t.Error("empty pool accepted")
	}
	if err := m.Update(bitvec.FromIndices(7), dilution.Positive); err == nil {
		t.Error("out-of-cohort pool accepted")
	}
	pm := bitvec.FromIndices(0, 1, 2, 3)
	if err := m.Update(pm, dilution.Negative); err != nil {
		t.Fatal(err)
	}
	if err := m.Update(pm, dilution.Positive); err == nil {
		t.Error("impossible outcome accepted")
	}
}

func TestBayesByHand(t *testing.T) {
	resp := dilution.Binary{Sens: 0.8, Spec: 0.95}
	m, err := New([]float64{0.3, 0.5}, resp)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Update(bitvec.FromIndices(0), dilution.Positive); err != nil {
		t.Fatal(err)
	}
	want := (0.3 * 0.8) / (0.3*0.8 + 0.7*0.05)
	if got := m.Marginals()[0]; math.Abs(got-want) > 1e-12 {
		t.Fatalf("posterior[0] = %v, want %v", got, want)
	}
}

// TestCrossValidationAgainstEngine is the load-bearing test of this
// package: baseline and engine-backed models must agree on the posterior,
// marginals, neg-masses, entropy, and the halving selection across
// randomized update sequences and response models.
func TestCrossValidationAgainstEngine(t *testing.T) {
	pool := engine.NewPool(4)
	defer pool.Close()
	responses := []dilution.Response{
		dilution.Ideal{},
		dilution.Binary{Sens: 0.92, Spec: 0.985},
		dilution.Hyperbolic{MaxSens: 0.97, Spec: 0.99, D: 0.35},
		dilution.Logistic{MaxSens: 0.98, Spec: 0.99, Alpha: 4, Beta: 1.4},
	}
	r := rng.New(20260705)
	for trial := 0; trial < 12; trial++ {
		n := 6 + r.Intn(5) // 6..10 subjects
		risks := make([]float64, n)
		for i := range risks {
			risks[i] = 0.02 + 0.4*r.Float64()
		}
		resp := responses[trial%len(responses)]
		fast, err := lattice.New(pool, lattice.Config{Risks: risks, Response: resp})
		if err != nil {
			t.Fatal(err)
		}
		slow, err := New(risks, resp)
		if err != nil {
			t.Fatal(err)
		}
		// Simulated truth drives a realistic outcome sequence.
		var truth bitvec.Mask
		for i := 0; i < n; i++ {
			if r.Bernoulli(risks[i]) {
				truth = truth.With(i)
			}
		}
		for round := 0; round < 6; round++ {
			sel := halving.Select(fast, halving.Options{MaxPool: 8})
			// The two implementations may break exact score ties differently
			// (compensated vs naive summation); require the baseline's pick
			// to be an equally good split, then apply the engine's pool to
			// both models so the posteriors stay comparable.
			slowSel := slow.SelectHalving(8)
			if slowSel != sel.Pool {
				a := math.Abs(slow.NegMass(sel.Pool) - 0.5)
				b := math.Abs(slow.NegMass(slowSel) - 0.5)
				if math.Abs(a-b) > 1e-9 {
					t.Fatalf("trial %d round %d: selections %v vs %v differ in quality: %v vs %v",
						trial, round, sel.Pool, slowSel, a, b)
				}
			}
			k := truth.IntersectCount(sel.Pool)
			y := resp.Sample(r, k, sel.Pool.Count())
			errF := fast.Update(sel.Pool, y)
			errS := slow.Update(sel.Pool, y)
			if (errF == nil) != (errS == nil) {
				t.Fatalf("trial %d round %d: error divergence: %v vs %v", trial, round, errF, errS)
			}
			if errF != nil {
				break
			}
		}
		// Posterior agreement.
		for s := uint64(0); s < uint64(1)<<uint(n); s++ {
			a, b := fast.StateMass(bitvec.Mask(s)), slow.StateMass(bitvec.Mask(s))
			if math.Abs(a-b) > 1e-9*math.Max(1, math.Abs(a)) {
				t.Fatalf("trial %d: state %d mass %v vs %v", trial, s, a, b)
			}
		}
		fm, sm := fast.Marginals(), slow.Marginals()
		for i := range fm {
			if math.Abs(fm[i]-sm[i]) > 1e-9 {
				t.Fatalf("trial %d: marginal[%d] %v vs %v", trial, i, fm[i], sm[i])
			}
		}
		if a, b := fast.Entropy(), slow.Entropy(); math.Abs(a-b) > 1e-7 {
			t.Fatalf("trial %d: entropy %v vs %v", trial, a, b)
		}
		probe := bitvec.Full(n / 2)
		if a, b := fast.NegMass(probe), slow.NegMass(probe); math.Abs(a-b) > 1e-9 {
			t.Fatalf("trial %d: negmass %v vs %v", trial, a, b)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	m, err := New(uniform(5, 0.2), dilution.Ideal{})
	if err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	if err := c.Update(bitvec.FromIndices(0), dilution.Negative); err != nil {
		t.Fatal(err)
	}
	if got := m.Marginals()[0]; math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("original mutated: %v", got)
	}
	if c.Tests() != 1 || m.Tests() != 0 {
		t.Error("test counters entangled")
	}
}

func TestSelectHalvingSkipsKnownPositives(t *testing.T) {
	// Reproduces the stall bug fixed in internal/halving: a known-positive
	// subject must not force every candidate's clean mass to zero.
	m, err := New(uniform(6, 0.3), dilution.Ideal{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Update(bitvec.FromIndices(0), dilution.Positive); err != nil {
		t.Fatal(err)
	}
	sel := m.SelectHalving(0)
	if sel.Has(0) {
		t.Fatalf("selection %v includes the known positive", sel)
	}
	if got := m.NegMass(sel); math.Abs(got-0.5) > 0.2 {
		t.Fatalf("selection clean mass %v far from 1/2", got)
	}
}
