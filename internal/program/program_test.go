package program

import (
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/dilution"
	"repro/internal/engine"
	"repro/internal/rng"
)

func newTestPool(t *testing.T) *engine.Pool {
	t.Helper()
	p := engine.NewPool(4)
	t.Cleanup(p.Close)
	return p
}

func uniform(n int, p float64) []float64 {
	rs := make([]float64, n)
	for i := range rs {
		rs[i] = p
	}
	return rs
}

func TestRunValidation(t *testing.T) {
	pool := newTestPool(t)
	ok := func(subjects []int) dilution.Outcome { return dilution.Negative }
	cases := []struct {
		name string
		cfg  Config
		test PoolTest
	}{
		{"empty population", Config{Response: dilution.Ideal{}}, ok},
		{"nil response", Config{Risks: uniform(10, 0.1)}, ok},
		{"nil test", Config{Risks: uniform(10, 0.1), Response: dilution.Ideal{}}, nil},
		{"cohort too big", Config{Risks: uniform(10, 0.1), Response: dilution.Ideal{}, CohortSize: 25}, ok},
		{"bad assignment", Config{Risks: uniform(10, 0.1), Response: dilution.Ideal{}, Assignment: Assignment(9)}, ok},
	}
	for _, c := range cases {
		if _, err := Run(pool, c.cfg, c.test); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestAssignCoversPopulationOnce(t *testing.T) {
	risks := make([]float64, 53)
	r := rng.New(1)
	for i := range risks {
		risks[i] = 0.01 + 0.4*r.Float64()
	}
	for _, mode := range []Assignment{AssignSorted, AssignContiguous} {
		cohorts := assign(risks, 10, mode)
		if len(cohorts) != 6 {
			t.Fatalf("%v: %d cohorts for 53 subjects of 10", mode, len(cohorts))
		}
		seen := make([]bool, len(risks))
		for _, c := range cohorts {
			if len(c) > 10 {
				t.Fatalf("%v: cohort of %d", mode, len(c))
			}
			for _, g := range c {
				if seen[g] {
					t.Fatalf("%v: subject %d in two cohorts", mode, g)
				}
				seen[g] = true
			}
		}
		for g, ok := range seen {
			if !ok {
				t.Fatalf("%v: subject %d unassigned", mode, g)
			}
		}
	}
	// Sorted mode produces non-decreasing risk across cohort boundaries.
	cohorts := assign(risks, 10, AssignSorted)
	var flat []float64
	for _, c := range cohorts {
		for _, g := range c {
			flat = append(flat, risks[g])
		}
	}
	if !sort.Float64sAreSorted(flat) {
		t.Fatal("sorted assignment not risk-ordered")
	}
	// Contiguous mode preserves population order.
	cohorts = assign(risks, 10, AssignContiguous)
	if cohorts[0][0] != 0 || cohorts[5][2] != 52 {
		t.Fatal("contiguous assignment reordered subjects")
	}
}

func TestRunClassifiesLargePopulationExactly(t *testing.T) {
	pool := newTestPool(t)
	const n = 120
	risks := uniform(n, 0.04)
	r := rng.New(42)
	popu := DrawPopulation(risks, r)
	oracle := NewOracle(popu, dilution.Ideal{}, r)
	res, err := Run(pool, Config{
		Risks:    risks,
		Response: dilution.Ideal{},
	}, oracle.Test)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("campaign did not converge")
	}
	if res.Cohorts != (n+15)/16 {
		t.Fatalf("%d cohorts", res.Cohorts)
	}
	if len(res.Classifications) != n {
		t.Fatalf("%d classifications", len(res.Classifications))
	}
	for g, call := range res.Classifications {
		if call.Subject != g {
			t.Fatalf("classification %d carries subject %d", g, call.Subject)
		}
		want := core.StatusNegative
		if popu.Infected[g] {
			want = core.StatusPositive
		}
		if call.Status != want {
			t.Fatalf("subject %d classified %v, truth %v", g, call.Status, popu.Infected[g])
		}
	}
	if res.Tests != oracle.Tests() {
		t.Fatalf("counted %d tests, oracle ran %d", res.Tests, oracle.Tests())
	}
	if got := res.TestsPerSubject(); got >= 0.8 {
		t.Fatalf("tests/subject %v shows no pooling savings", got)
	}
	if res.MaxStages < 1 {
		t.Fatalf("MaxStages = %d", res.MaxStages)
	}
	// Positives listing matches the truth.
	var wantPos []int
	for g, inf := range popu.Infected {
		if inf {
			wantPos = append(wantPos, g)
		}
	}
	gotPos := res.Positives()
	if len(gotPos) != len(wantPos) {
		t.Fatalf("positives %v vs %v", gotPos, wantPos)
	}
	for i := range wantPos {
		if gotPos[i] != wantPos[i] {
			t.Fatalf("positives %v vs %v", gotPos, wantPos)
		}
	}
}

func TestAssignmentModesComparableOnSkewedRisk(t *testing.T) {
	// Heterogeneous population: a minority at high risk scattered through
	// a low-risk majority. With *adaptive* selection the two binnings must
	// land in the same cost ballpark — prior entropy is additive, so the
	// lattice compensates for mixed-risk cohorts — and both must classify
	// correctly. (Sorting's decisive advantage belongs to non-adaptive
	// designs; see the package comment.)
	pool := newTestPool(t)
	const n = 96
	risks := make([]float64, n)
	for i := range risks {
		if i%8 == 0 {
			risks[i] = 0.3
		} else {
			risks[i] = 0.01
		}
	}
	run := func(mode Assignment, seed uint64) int {
		total := 0
		const reps = 5
		for rep := uint64(0); rep < reps; rep++ {
			rr := rng.New(seed + rep)
			popu := DrawPopulation(risks, rr)
			oracle := NewOracle(popu, dilution.Ideal{}, rr)
			res, err := Run(pool, Config{
				Risks:      risks,
				Response:   dilution.Ideal{},
				Assignment: mode,
			}, oracle.Test)
			if err != nil {
				t.Fatal(err)
			}
			total += res.Tests
		}
		return total
	}
	sorted := run(AssignSorted, 100)
	contig := run(AssignContiguous, 100)
	lo, hi := sorted, contig
	if lo > hi {
		lo, hi = hi, lo
	}
	if float64(hi) > 1.5*float64(lo) {
		t.Fatalf("assignment modes diverged beyond noise: sorted %d vs contiguous %d tests", sorted, contig)
	}
}

func TestDrawPopulationAndOracle(t *testing.T) {
	r := rng.New(3)
	risks := uniform(200, 0.1)
	popu := DrawPopulation(risks, r)
	if len(popu.Infected) != 200 {
		t.Fatalf("infected slice %d", len(popu.Infected))
	}
	count := popu.Count()
	if count < 5 || count > 45 {
		t.Fatalf("infected count %d implausible for p=0.1, n=200", count)
	}
	o := NewOracle(popu, dilution.Ideal{}, r)
	// Find one infected and one clean subject.
	var inf, clean int = -1, -1
	for g, v := range popu.Infected {
		if v && inf == -1 {
			inf = g
		}
		if !v && clean == -1 {
			clean = g
		}
	}
	if y := o.Test([]int{inf}); !y.Positive {
		t.Error("infected subject tested negative under ideal assay")
	}
	if y := o.Test([]int{clean}); y.Positive {
		t.Error("clean subject tested positive under ideal assay")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty pool did not panic")
			}
		}()
		o.Test(nil)
	}()
}

func TestAssignmentString(t *testing.T) {
	if AssignSorted.String() != "sorted" || AssignContiguous.String() != "contiguous" {
		t.Error("assignment names wrong")
	}
	if Assignment(7).String() == "" {
		t.Error("unknown assignment empty")
	}
}
