// Package program orchestrates surveillance at population scale.
//
// One lattice session handles at most 30 subjects (the dense engine's
// bound), but a screening programme covers hundreds or thousands. The
// program layer splits the population into cohort-sized bins, runs one
// Bayesian session per cohort — cohorts fan out across the engine's
// workers — and aggregates the per-subject calls back into population
// order.
//
// Binning offers two assignments, and with adaptive Bayesian selection
// the *total* test budget is nearly assignment-invariant (prior entropy
// is additive; the lattice prices mixed risk correctly — the A4 ablation
// measures identical totals). What differs is the critical path:
// AssignSorted concentrates the high-risk subjects into few cohorts,
// which isolates the expensive cases (useful when they get a dedicated
// lab lane) but makes those cohorts need many sequential stages, while
// AssignContiguous spreads hard cases across cohorts and so finishes in
// fewer rounds when all cohorts run in parallel. Classical non-adaptive
// designs (Dorfman blocks) still genuinely require the sorted form.
package program

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/dilution"
	"repro/internal/engine"
	"repro/internal/halving"
	"repro/internal/rng"
)

// Assignment selects how subjects are binned into cohorts.
type Assignment int

// Assignment modes.
const (
	// AssignSorted bins subjects by ascending prior risk (default):
	// cohorts are risk-homogeneous, which maximizes pooling efficiency.
	AssignSorted Assignment = iota
	// AssignContiguous bins subjects in population order.
	AssignContiguous
)

// String names the assignment mode.
func (a Assignment) String() string {
	switch a {
	case AssignSorted:
		return "sorted"
	case AssignContiguous:
		return "contiguous"
	default:
		return fmt.Sprintf("assignment(%d)", int(a))
	}
}

// PoolTest runs one physical pooled test on the given population-level
// subject indices. Implementations must be safe for concurrent use:
// cohorts run in parallel and each issues its own tests.
type PoolTest func(subjects []int) dilution.Outcome

// Config configures a population campaign.
type Config struct {
	// Risks holds the whole population's prior risks (any length >= 1).
	Risks []float64
	// Response models the assay. Required.
	Response dilution.Response
	// CohortSize is the lattice size per session; 0 defaults to 16,
	// values above 24 are rejected (memory discipline: 24 → 16M states
	// per in-flight cohort).
	CohortSize int
	// Assignment selects the binning (AssignSorted by default).
	Assignment Assignment
	// Session options forwarded to every cohort (see core.Config).
	MaxPool      int
	Lookahead    int
	PosThreshold float64
	NegThreshold float64
	MaxStages    int
}

// Result aggregates a population campaign.
type Result struct {
	// Classifications is indexed by population subject.
	Classifications []core.Classification
	Tests           int
	Cohorts         int
	// MaxStages is the largest per-cohort stage count: with cohorts
	// running in parallel in the lab too, it is the campaign's critical
	// path in lab round-trips.
	MaxStages int
	Converged bool // every cohort converged
}

// Positives lists the subjects classified positive, ascending.
func (r *Result) Positives() []int {
	var out []int
	for _, c := range r.Classifications {
		if c.Status == core.StatusPositive {
			out = append(out, c.Subject)
		}
	}
	return out
}

// TestsPerSubject returns total tests over population size.
func (r *Result) TestsPerSubject() float64 {
	if len(r.Classifications) == 0 {
		return 0
	}
	return float64(r.Tests) / float64(len(r.Classifications))
}

// cohortOf is one bin: lattice position -> population subject index.
type cohortOf []int

// assign bins the population into cohorts of at most size subjects.
func assign(risks []float64, size int, mode Assignment) []cohortOf {
	order := make([]int, len(risks))
	for i := range order {
		order[i] = i
	}
	if mode == AssignSorted {
		sort.SliceStable(order, func(a, b int) bool {
			if risks[order[a]] != risks[order[b]] { //lint:allow floats exact inequality is a deterministic sort tie-break, not a numeric test
				return risks[order[a]] < risks[order[b]]
			}
			return order[a] < order[b]
		})
	}
	var cohorts []cohortOf
	for start := 0; start < len(order); start += size {
		end := start + size
		if end > len(order) {
			end = len(order)
		}
		cohorts = append(cohorts, cohortOf(order[start:end]))
	}
	return cohorts
}

// Run executes the campaign: one Bayesian session per cohort, cohorts
// fanned out across the pool's workers (each cohort's lattice runs on a
// private single-worker engine so the two parallelism levels compose).
// test is invoked concurrently from different cohorts.
func Run(pool *engine.Pool, cfg Config, test PoolTest) (*Result, error) {
	if len(cfg.Risks) == 0 {
		return nil, fmt.Errorf("program: empty population")
	}
	if cfg.Response == nil {
		return nil, fmt.Errorf("program: nil response model")
	}
	if test == nil {
		return nil, fmt.Errorf("program: nil test function")
	}
	size := cfg.CohortSize
	if size == 0 {
		size = 16
	}
	if size < 1 || size > 24 {
		return nil, fmt.Errorf("program: cohort size %d outside [1,24]", size)
	}
	switch cfg.Assignment {
	case AssignSorted, AssignContiguous:
	default:
		return nil, fmt.Errorf("program: unknown assignment %d", int(cfg.Assignment))
	}

	cohorts := assign(cfg.Risks, size, cfg.Assignment)
	res := &Result{
		Classifications: make([]core.Classification, len(cfg.Risks)),
		Cohorts:         len(cohorts),
		Converged:       true,
	}
	var mu sync.Mutex
	var firstErr error
	pool.Run(len(cohorts), func(ci int) {
		cohort := cohorts[ci]
		risks := make([]float64, len(cohort))
		for pos, g := range cohort {
			risks[pos] = cfg.Risks[g]
		}
		lp := engine.NewPool(1)
		defer lp.Close()
		sess, err := core.NewSession(lp, core.Config{
			Risks:        risks,
			Response:     cfg.Response,
			Strategy:     halving.Halving{Opts: halving.Options{MaxPool: cfg.MaxPool}},
			Lookahead:    cfg.Lookahead,
			PosThreshold: cfg.PosThreshold,
			NegThreshold: cfg.NegThreshold,
			MaxStages:    cfg.MaxStages,
		})
		if err == nil {
			var out *core.Result
			out, err = sess.Run(func(pm bitvec.Mask) dilution.Outcome {
				subjects := make([]int, 0, pm.Count())
				for _, pos := range pm.Indices() {
					subjects = append(subjects, cohort[pos])
				}
				return test(subjects)
			})
			if err == nil {
				mu.Lock()
				for pos, call := range out.Classifications {
					call.Subject = cohort[pos]
					res.Classifications[cohort[pos]] = call
				}
				res.Tests += out.Tests
				if out.Stages > res.MaxStages {
					res.MaxStages = out.Stages
				}
				if !out.Converged {
					res.Converged = false
				}
				mu.Unlock()
				return
			}
		}
		mu.Lock()
		if firstErr == nil {
			firstErr = fmt.Errorf("program: cohort %d: %w", ci, err)
		}
		mu.Unlock()
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return res, nil
}

// Population couples population-scale risks with a realized truth (the
// >64-subject analogue of workload.Population, using a bool slice instead
// of a bitmask).
type Population struct {
	Risks    []float64
	Infected []bool
}

// DrawPopulation realizes a truth for an arbitrarily large population.
func DrawPopulation(risks []float64, r *rng.Source) Population {
	inf := make([]bool, len(risks))
	for i, p := range risks {
		inf[i] = r.Bernoulli(p)
	}
	return Population{Risks: append([]float64(nil), risks...), Infected: inf}
}

// Count returns the number of infected subjects.
func (p Population) Count() int {
	n := 0
	for _, v := range p.Infected {
		if v {
			n++
		}
	}
	return n
}

// Oracle is the population-scale simulated lab. Safe for concurrent use:
// each Test call locks the RNG (cohorts run in parallel). Outcomes are
// therefore scheduling-dependent across cohorts but each campaign remains
// statistically faithful; for bit-reproducible studies use one Run per
// seed and compare aggregates.
type Oracle struct {
	pop  Population
	resp dilution.Response

	mu    sync.Mutex
	rng   *rng.Source
	tests int
}

// NewOracle builds the simulated lab.
func NewOracle(p Population, resp dilution.Response, r *rng.Source) *Oracle {
	return &Oracle{pop: p, resp: resp, rng: r}
}

// Test implements PoolTest.
func (o *Oracle) Test(subjects []int) dilution.Outcome {
	if len(subjects) == 0 {
		panic("program: test on empty pool")
	}
	k := 0
	for _, s := range subjects {
		if o.pop.Infected[s] {
			k++
		}
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.tests++
	return o.resp.Sample(o.rng, k, len(subjects))
}

// Tests returns how many physical tests have run.
func (o *Oracle) Tests() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.tests
}
