package bench

import (
	"strings"
	"testing"
	"time"
)

func TestMeasure(t *testing.T) {
	calls := 0
	tm := Measure(5, 2, func() { calls++; time.Sleep(time.Millisecond) })
	if calls != 7 {
		t.Fatalf("fn called %d times, want 7 (2 warmup + 5 measured)", calls)
	}
	if tm.Reps != 5 {
		t.Fatalf("Reps = %d", tm.Reps)
	}
	if tm.Min <= 0 || tm.Mean < tm.Min || tm.Max < tm.Mean {
		t.Fatalf("ordering violated: min=%v mean=%v max=%v", tm.Min, tm.Mean, tm.Max)
	}
}

func TestMeasurePanicsOnZeroReps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Measure(0, 0, func() {})
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(100*time.Millisecond, 10*time.Millisecond); got != 10 {
		t.Fatalf("Speedup = %v", got)
	}
	if got := Speedup(time.Second, 0); got != 1e9 {
		t.Fatalf("degenerate Speedup = %v", got)
	}
}

func TestEfficiency(t *testing.T) {
	if got := Efficiency(8, 8, 1); got != 1 {
		t.Fatalf("perfect efficiency = %v", got)
	}
	if got := Efficiency(4, 8, 1); got != 0.5 {
		t.Fatalf("half efficiency = %v", got)
	}
	if got := Efficiency(4, 0, 1); got != 0 {
		t.Fatalf("degenerate efficiency = %v", got)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("demo", "n", "time", "speedup")
	tab.AddRow(16, 1500*time.Microsecond, 12.3456)
	tab.AddRow(1024, time.Second, 0.5)
	if tab.Rows() != 2 {
		t.Fatalf("Rows = %d", tab.Rows())
	}
	var sb strings.Builder
	if _, err := tab.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"== demo ==", "n", "speedup", "12.35", "1024", "1.5ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Columns aligned: header and rule line equal length.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines[1]) != len(lines[2]) {
		t.Errorf("header/rule misaligned:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.AddRow("plain", `quote"and,comma`)
	var sb strings.Builder
	if err := tab.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "a,b\nplain,\"quote\"\"and,comma\"\n"
	if sb.String() != want {
		t.Fatalf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "halving"
	s.Add(1, 5.5)
	s.Add(2, 4.25)
	var sb strings.Builder
	if _, err := s.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	want := "halving\t1\t5.5\nhalving\t2\t4.25\n"
	if sb.String() != want {
		t.Fatalf("series = %q", sb.String())
	}
}
