// Package bench provides the small harness the experiment driver
// (cmd/sbgt-bench) uses to time kernels, sweep parameters, and print the
// tables and series that correspond to the paper's evaluation artifacts.
//
// Output discipline: every experiment prints (a) a human-readable aligned
// table to stdout and (b) optionally the same rows as CSV, so EXPERIMENTS.md
// can quote results verbatim and plots can be regenerated elsewhere.
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Timing summarizes repeated measurements of one operation.
type Timing struct {
	Reps int
	Min  time.Duration
	Mean time.Duration
	Max  time.Duration
}

// Measure runs fn reps times (after warmup unmeasured runs) and collects
// min/mean/max wall time. It panics if reps < 1 — a bench config error.
func Measure(reps, warmup int, fn func()) Timing {
	if reps < 1 {
		panic("bench: reps < 1")
	}
	for i := 0; i < warmup; i++ {
		fn()
	}
	t := Timing{Reps: reps, Min: time.Duration(1<<63 - 1)}
	var total time.Duration
	for i := 0; i < reps; i++ {
		start := time.Now()
		fn()
		d := time.Since(start)
		total += d
		if d < t.Min {
			t.Min = d
		}
		if d > t.Max {
			t.Max = d
		}
	}
	t.Mean = total / time.Duration(reps)
	return t
}

// Speedup returns base/target as a multiplicative factor (how many times
// faster target is than base). Zero target durations yield +Inf semantics
// clamped to a large sentinel to keep tables printable.
func Speedup(base, target time.Duration) float64 {
	if target <= 0 {
		return 1e9
	}
	return float64(base) / float64(target)
}

// Efficiency returns the parallel efficiency of a scaled run: speedup
// divided by the resource ratio.
func Efficiency(speedup float64, workers, baseWorkers int) float64 {
	if workers <= 0 || baseWorkers <= 0 {
		return 0
	}
	return speedup / (float64(workers) / float64(baseWorkers))
}

// Table accumulates rows and prints them aligned. It is deliberately tiny:
// fixed header, %v-rendered cells, column-width autosizing.
type Table struct {
	Title  string
	Header []string
	rows   [][]string
}

// NewTable creates a table with the given title and column names.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends one row; cells are rendered with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case time.Duration:
			row[i] = v.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// WriteTo renders the aligned table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	rule := make([]string, len(t.Header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, row := range t.rows {
		line(row)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// WriteCSV renders the table as CSV (header + rows). Cells containing
// commas or quotes are quoted per RFC 4180.
func (t *Table) WriteCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		for i, cell := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = "\"" + strings.ReplaceAll(cell, "\"", "\"\"") + "\""
			}
			if _, err := io.WriteString(w, cell); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// Series is a labelled (x, y) sequence for figure-style outputs.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends one point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// WriteTo renders the series as "name x y" lines.
func (s *Series) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	for i := range s.X {
		fmt.Fprintf(&b, "%s\t%g\t%g\n", s.Name, s.X[i], s.Y[i])
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}
