package lattice

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
	"repro/internal/dilution"
	"repro/internal/prob"
)

func TestNegMassPrior(t *testing.T) {
	pool := newTestPool(t)
	risks := []float64{0.1, 0.2, 0.3, 0.4}
	m := mustNew(t, pool, Config{Risks: risks, Response: dilution.Ideal{}})
	// Under the independent prior, P(pool clean) = Π (1 - p_i) over the pool.
	cases := []struct {
		pm   bitvec.Mask
		want float64
	}{
		{bitvec.FromIndices(0), 0.9},
		{bitvec.FromIndices(0, 1), 0.9 * 0.8},
		{bitvec.FromIndices(0, 1, 2, 3), 0.9 * 0.8 * 0.7 * 0.6},
	}
	for _, c := range cases {
		if got := m.NegMass(c.pm); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("NegMass(%v) = %v, want %v", c.pm, got, c.want)
		}
	}
	if got := m.NegMass(0); math.Abs(got-1) > 1e-12 {
		t.Errorf("NegMass(empty) = %v, want 1", got)
	}
}

func TestNegMassesMatchesNegMass(t *testing.T) {
	pool := newTestPool(t)
	m := mustNew(t, pool, Config{Risks: uniformRisks(10, 0.12), Response: dilution.Ideal{}})
	// Make the posterior non-trivial first.
	if err := m.Update(bitvec.FromIndices(0, 1, 2, 3, 4), dilution.Positive); err != nil {
		t.Fatal(err)
	}
	cands := []bitvec.Mask{
		bitvec.FromIndices(0),
		bitvec.FromIndices(0, 1),
		bitvec.FromIndices(2, 5, 7),
		bitvec.FromIndices(9),
		bitvec.Full(10),
	}
	batch := m.NegMasses(cands)
	if len(batch) != len(cands) {
		t.Fatalf("NegMasses returned %d values", len(batch))
	}
	for i, c := range cands {
		if single := m.NegMass(c); math.Abs(batch[i]-single) > 1e-12 {
			t.Errorf("candidate %v: batch %v vs single %v", c, batch[i], single)
		}
	}
	if got := m.NegMasses(nil); got != nil {
		t.Errorf("NegMasses(nil) = %v", got)
	}
}

func TestEntropyPrior(t *testing.T) {
	pool := newTestPool(t)
	// Uniform risks of 1/2 make the lattice uniform: entropy = N bits.
	m := mustNew(t, pool, Config{Risks: uniformRisks(8, 0.5), Response: dilution.Ideal{}})
	if got := m.Entropy(); math.Abs(got-8) > 1e-9 {
		t.Fatalf("uniform-lattice entropy = %v bits, want 8", got)
	}
	// Independent prior: entropy is the sum of Bernoulli entropies.
	risks := []float64{0.1, 0.25, 0.4}
	m2 := mustNew(t, pool, Config{Risks: risks, Response: dilution.Ideal{}})
	want := 0.0
	for _, p := range risks {
		want += prob.BernoulliEntropy(p) / math.Ln2
	}
	if got := m2.Entropy(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("entropy = %v bits, want %v", got, want)
	}
}

func TestEntropyDecreasesWithInformativeTest(t *testing.T) {
	pool := newTestPool(t)
	m := mustNew(t, pool, Config{Risks: uniformRisks(8, 0.3), Response: dilution.Ideal{}})
	before := m.Entropy()
	if err := m.Update(bitvec.FromIndices(0, 1, 2, 3), dilution.Negative); err != nil {
		t.Fatal(err)
	}
	after := m.Entropy()
	if after >= before {
		t.Fatalf("entropy did not decrease: %v -> %v", before, after)
	}
}

func TestMAP(t *testing.T) {
	pool := newTestPool(t)
	// Low risks: MAP of the prior is the all-negative state.
	m := mustNew(t, pool, Config{Risks: uniformRisks(6, 0.05), Response: dilution.Ideal{}})
	state, mass := m.MAP()
	if state != 0 {
		t.Fatalf("prior MAP = %v, want empty state", state)
	}
	if want := math.Pow(0.95, 6); math.Abs(mass-want) > 1e-12 {
		t.Fatalf("MAP mass = %v, want %v", mass, want)
	}
	// After an ideal positive on {2}, MAP must contain subject 2.
	if err := m.Update(bitvec.FromIndices(2), dilution.Positive); err != nil {
		t.Fatal(err)
	}
	state, _ = m.MAP()
	if !state.Has(2) {
		t.Fatalf("post-update MAP %v misses subject 2", state)
	}
}

func TestExpectedInfected(t *testing.T) {
	pool := newTestPool(t)
	risks := []float64{0.1, 0.2, 0.3}
	m := mustNew(t, pool, Config{Risks: risks, Response: dilution.Ideal{}})
	if got, want := m.ExpectedInfected(), 0.6; math.Abs(got-want) > 1e-12 {
		t.Fatalf("E[|S|] = %v, want %v", got, want)
	}
}

func TestExpectedInfectedEqualsMarginalSum(t *testing.T) {
	pool := newTestPool(t)
	m := mustNew(t, pool, Config{Risks: uniformRisks(7, 0.2), Response: dilution.Binary{Sens: 0.9, Spec: 0.95}})
	if err := m.Update(bitvec.FromIndices(0, 1, 2), dilution.Positive); err != nil {
		t.Fatal(err)
	}
	marg := m.Marginals()
	if got, want := m.ExpectedInfected(), prob.Sum(marg); math.Abs(got-want) > 1e-12 {
		t.Fatalf("E[|S|] = %v, Σ marginals = %v", got, want)
	}
}

func TestConditionNegative(t *testing.T) {
	pool := newTestPool(t)
	risks := []float64{0.1, 0.2, 0.3, 0.4}
	m := mustNew(t, pool, Config{Risks: risks, Response: dilution.Ideal{}})
	// Conditioning the *prior* on subject 1 negative must give the product
	// prior over the remaining subjects (independence).
	c := m.Condition(1, false)
	if c == nil {
		t.Fatal("Condition returned nil")
	}
	if c.N() != 3 || c.States() != 8 {
		t.Fatalf("reduced model N=%d states=%d", c.N(), c.States())
	}
	marg := c.Marginals()
	want := []float64{0.1, 0.3, 0.4}
	for i := range want {
		if math.Abs(marg[i]-want[i]) > 1e-12 {
			t.Errorf("reduced marginal[%d] = %v, want %v", i, marg[i], want[i])
		}
	}
	if math.Abs(c.Mass()-1) > 1e-12 {
		t.Errorf("reduced mass = %v", c.Mass())
	}
}

func TestConditionPositiveAfterEvidence(t *testing.T) {
	pool := newTestPool(t)
	m := mustNew(t, pool, Config{Risks: uniformRisks(5, 0.2), Response: dilution.Binary{Sens: 0.9, Spec: 0.95}})
	if err := m.Update(bitvec.FromIndices(0, 1), dilution.Positive); err != nil {
		t.Fatal(err)
	}
	full := m.Marginals()
	c := m.Condition(0, true)
	if c == nil {
		t.Fatal("Condition returned nil")
	}
	// Check against direct conditional: P(1 | 0 infected, data) computed on
	// the full lattice by restricting to states with bit 0 set.
	var joint, norm float64
	for s := bitvec.Mask(0); s < 32; s++ {
		if !s.Has(0) {
			continue
		}
		w := m.StateMass(s)
		norm += w
		if s.Has(1) {
			joint += w
		}
	}
	want := joint / norm
	if got := c.Marginals()[0]; math.Abs(got-want) > 1e-12 {
		t.Fatalf("conditional marginal = %v, want %v (full-model marginal was %v)", got, want, full[1])
	}
}

func TestConditionEdgeCases(t *testing.T) {
	pool := newTestPool(t)
	m := mustNew(t, pool, Config{Risks: uniformRisks(2, 0.2), Response: dilution.Ideal{}})
	if got := m.Condition(-1, true); got != nil {
		t.Error("negative subject accepted")
	}
	if got := m.Condition(2, true); got != nil {
		t.Error("out-of-range subject accepted")
	}
	one := m.Condition(0, false)
	if one == nil || one.N() != 1 {
		t.Fatal("conditioning to single subject failed")
	}
	if got := one.Condition(0, false); got != nil {
		t.Error("conditioning the last subject should return nil")
	}
	// Zero-mass event: after an ideal negative on {0}, conditioning on
	// subject 0 positive is impossible.
	m2 := mustNew(t, pool, Config{Risks: uniformRisks(3, 0.2), Response: dilution.Ideal{}})
	if err := m2.Update(bitvec.FromIndices(0), dilution.Negative); err != nil {
		t.Fatal(err)
	}
	if got := m2.Condition(0, true); got != nil {
		t.Error("zero-mass conditioning returned a model")
	}
}

func TestMarginalsAlwaysInUnitInterval(t *testing.T) {
	pool := newTestPool(t)
	f := func(seed uint8) bool {
		n := 4 + int(seed%4)
		m := mustNew(t, pool, Config{Risks: uniformRisks(n, 0.05+float64(seed%10)/20), Response: dilution.Hyperbolic{MaxSens: 0.95, Spec: 0.97, D: 0.4}})
		pm := bitvec.Mask(uint64(seed)%(uint64(1)<<uint(n)) | 1)
		y := dilution.Negative
		if seed%2 == 0 {
			y = dilution.Positive
		}
		if err := m.Update(pm, y); err != nil {
			return true // rejected update is fine
		}
		for _, g := range m.Marginals() {
			if g < -1e-12 || g > 1+1e-12 {
				return false
			}
		}
		return math.Abs(m.Mass()-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
