package lattice

import (
	"fmt"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/dilution"
	"repro/internal/engine"
)

// flatResp has likelihood ½ everywhere, keeping the posterior a fixed
// point across thousands of benchmark updates (an informative response
// would concentrate it into denormal-range tails and measure denormal
// arithmetic instead of the kernel).
var flatResp = dilution.Binary{Sens: 0.5, Spec: 0.5}

func benchLattice(b *testing.B, n int, resp dilution.Response) *Model {
	b.Helper()
	pool := engine.NewPool(0)
	b.Cleanup(pool.Close)
	risks := make([]float64, n)
	for i := range risks {
		risks[i] = 0.05
	}
	m, err := New(pool, Config{Risks: risks, Response: resp})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func BenchmarkUpdateBySize(b *testing.B) {
	for _, n := range []int{12, 16, 20} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			m := benchLattice(b, n, flatResp)
			pm := bitvec.Full(min(n, 16))
			ys := []dilution.Outcome{dilution.Negative, dilution.Positive}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := m.Update(pm, ys[i%2]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMarginals(b *testing.B) {
	m := benchLattice(b, 18, flatResp)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Marginals()
	}
}

// BenchmarkSelectionScan compares the one-pass prefix scan against the
// equivalent batched per-candidate scan — the per-core heart of the T2
// speedup.
func BenchmarkSelectionScan(b *testing.B) {
	m := benchLattice(b, 18, flatResp)
	order := make([]int, 18)
	for i := range order {
		order[i] = i
	}
	cands := make([]bitvec.Mask, 18)
	var prefix bitvec.Mask
	for i := range cands {
		prefix = prefix.With(i)
		cands[i] = prefix
	}
	b.Run("prefix-histogram", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.PrefixNegMasses(order)
		}
	})
	b.Run("per-candidate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.NegMasses(cands)
		}
	})
}

func BenchmarkIntersectDist(b *testing.B) {
	m := benchLattice(b, 18, flatResp)
	pm := bitvec.Full(12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.IntersectDist(pm)
	}
}

func BenchmarkCondition(b *testing.B) {
	m := benchLattice(b, 16, flatResp)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c := m.Condition(3, false); c == nil {
			b.Fatal("condition failed")
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
