package lattice

import (
	"fmt"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/dilution"
	"repro/internal/engine"
)

// flatResp has likelihood ½ everywhere, keeping the posterior a fixed
// point across thousands of benchmark updates (an informative response
// would concentrate it into denormal-range tails and measure denormal
// arithmetic instead of the kernel).
var flatResp = dilution.Binary{Sens: 0.5, Spec: 0.5}

func benchLattice(b *testing.B, n int, resp dilution.Response) *Model {
	b.Helper()
	pool := engine.NewPool(0)
	b.Cleanup(pool.Close)
	risks := make([]float64, n)
	for i := range risks {
		risks[i] = 0.05
	}
	m, err := New(pool, Config{Risks: risks, Response: resp})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func BenchmarkUpdateBySize(b *testing.B) {
	for _, n := range []int{12, 16, 20} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			m := benchLattice(b, n, flatResp)
			pm := bitvec.Full(min(n, 16))
			ys := []dilution.Outcome{dilution.Negative, dilution.Positive}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := m.Update(pm, ys[i%2]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMarginals(b *testing.B) {
	m := benchLattice(b, 18, flatResp)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Marginals()
	}
}

// BenchmarkSelectionScan compares the one-pass prefix scan against the
// equivalent batched per-candidate scan — the per-core heart of the T2
// speedup.
func BenchmarkSelectionScan(b *testing.B) {
	m := benchLattice(b, 18, flatResp)
	order := make([]int, 18)
	for i := range order {
		order[i] = i
	}
	cands := make([]bitvec.Mask, 18)
	var prefix bitvec.Mask
	for i := range cands {
		prefix = prefix.With(i)
		cands[i] = prefix
	}
	b.Run("prefix-histogram", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.PrefixNegMasses(order)
		}
	})
	b.Run("per-candidate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.NegMasses(cands)
		}
	})
}

func BenchmarkIntersectDist(b *testing.B) {
	m := benchLattice(b, 18, flatResp)
	pm := bitvec.Full(12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.IntersectDist(pm)
	}
}

func BenchmarkCondition(b *testing.B) {
	m := benchLattice(b, 16, flatResp)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c := m.Condition(3, false); c == nil {
			b.Fatal("condition failed")
		}
	}
}

// BenchmarkConditionInPlace measures the reuse path against the
// allocating Condition above: the collapse gathers inside the receiver's
// own backing array, so the 2^N vector (and model) allocation disappears.
// Each collapse shrinks the model, so rebuild when it runs out.
func BenchmarkConditionInPlace(b *testing.B) {
	m := benchLattice(b, 16, flatResp)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.N() <= 2 {
			b.StopTimer()
			m = benchLattice(b, 16, flatResp)
			b.StartTimer()
		}
		if c := m.ConditionInPlace(0, false); c == nil {
			b.Fatal("condition failed")
		}
	}
}

// BenchmarkNegMassCrossover sweeps pool size × N for both NegMass paths.
// This sweep backs the SubLatticeMinPool default: the sub-lattice walk
// visits 2^(N−g) states but strided, the dense sweep visits 2^N
// contiguously, so the crossover sits where the 2^g state reduction
// overtakes the bandwidth advantage.
func BenchmarkNegMassCrossover(b *testing.B) {
	for _, n := range []int{14, 18, 20} {
		m := benchLattice(b, n, flatResp)
		for _, g := range []int{1, 2, 3, 4, 6, 8} {
			// Spread pool: representative stride pattern (neither the
			// contiguous high-bits best case nor the unit-stride worst).
			var pm bitvec.Mask
			for i := 0; i < g; i++ {
				pm = pm.With(i * n / g)
			}
			b.Run(fmt.Sprintf("N=%d/pool=%d/dense", n, g), func(b *testing.B) {
				prev := SetSubLatticeMinPool(n + 1)
				defer SetSubLatticeMinPool(prev)
				for i := 0; i < b.N; i++ {
					m.NegMass(pm)
				}
			})
			b.Run(fmt.Sprintf("N=%d/pool=%d/sublattice", n, g), func(b *testing.B) {
				prev := SetSubLatticeMinPool(1)
				defer SetSubLatticeMinPool(prev)
				for i := 0; i < b.N; i++ {
					m.NegMass(pm)
				}
			})
		}
	}
}

// BenchmarkNegMassesTiling sweeps candidate-count × N for the tiled and
// untiled candidate scans.
func BenchmarkNegMassesTiling(b *testing.B) {
	for _, n := range []int{14, 18, 20} {
		m := benchLattice(b, n, flatResp)
		for _, k := range []int{2, 8, 32} {
			cands := make([]bitvec.Mask, k)
			var prefix bitvec.Mask
			for i := range cands {
				prefix = prefix.With(i % n)
				cands[i] = prefix | bitvec.FromIndices((i*7)%n)
			}
			b.Run(fmt.Sprintf("N=%d/cands=%d/untiled", n, k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					m.NegMassesUntiled(cands)
				}
			})
			b.Run(fmt.Sprintf("N=%d/cands=%d/tiled", n, k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					m.NegMasses(cands)
				}
			})
		}
	}
}

// BenchmarkSummary compares the fused digest with the four separate
// passes it replaces per session round.
func BenchmarkSummary(b *testing.B) {
	m := benchLattice(b, 18, flatResp)
	b.Run("separate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.Marginals()
			m.Entropy()
			m.MAP()
			m.ExpectedInfected()
			m.Mass()
		}
	})
	b.Run("fused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.Summary()
		}
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
