package lattice

import (
	"math"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/dilution"
	"repro/internal/engine"
)

func newTestPool(t *testing.T) *engine.Pool {
	t.Helper()
	p := engine.NewPool(4)
	t.Cleanup(p.Close)
	return p
}

func uniformRisks(n int, p float64) []float64 {
	rs := make([]float64, n)
	for i := range rs {
		rs[i] = p
	}
	return rs
}

func mustNew(t *testing.T, pool *engine.Pool, cfg Config) *Model {
	t.Helper()
	m, err := New(pool, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	pool := newTestPool(t)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"empty cohort", Config{Risks: nil, Response: dilution.Ideal{}}},
		{"too large", Config{Risks: uniformRisks(31, 0.1), Response: dilution.Ideal{}}},
		{"nil response", Config{Risks: uniformRisks(4, 0.1)}},
		{"risk zero", Config{Risks: []float64{0.1, 0}, Response: dilution.Ideal{}}},
		{"risk one", Config{Risks: []float64{0.1, 1}, Response: dilution.Ideal{}}},
		{"risk NaN", Config{Risks: []float64{math.NaN()}, Response: dilution.Ideal{}}},
	}
	for _, c := range cases {
		if _, err := New(pool, c.cfg); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestPriorIsProductMeasure(t *testing.T) {
	pool := newTestPool(t)
	risks := []float64{0.1, 0.3, 0.05, 0.2}
	m := mustNew(t, pool, Config{Risks: risks, Response: dilution.Ideal{}})
	if m.N() != 4 || m.States() != 16 {
		t.Fatalf("N=%d states=%d", m.N(), m.States())
	}
	for s := bitvec.Mask(0); s < 16; s++ {
		want := 1.0
		for i := 0; i < 4; i++ {
			if s.Has(i) {
				want *= risks[i]
			} else {
				want *= 1 - risks[i]
			}
		}
		if got := m.StateMass(s); math.Abs(got-want) > 1e-14 {
			t.Fatalf("prior(%v) = %v, want %v", s, got, want)
		}
	}
	if got := m.Mass(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("prior mass = %v", got)
	}
}

func TestPriorMarginalsMatchRisks(t *testing.T) {
	pool := newTestPool(t)
	risks := []float64{0.02, 0.5, 0.13, 0.4, 0.07, 0.25}
	m := mustNew(t, pool, Config{Risks: risks, Response: dilution.Ideal{}})
	marg := m.Marginals()
	for i, p := range risks {
		if math.Abs(marg[i]-p) > 1e-12 {
			t.Errorf("marginal[%d] = %v, want %v", i, marg[i], p)
		}
	}
}

func TestUpdateIdealNegativeClearsPool(t *testing.T) {
	pool := newTestPool(t)
	m := mustNew(t, pool, Config{Risks: uniformRisks(6, 0.2), Response: dilution.Ideal{}})
	poolMask := bitvec.FromIndices(0, 1, 2)
	if err := m.Update(poolMask, dilution.Negative); err != nil {
		t.Fatal(err)
	}
	marg := m.Marginals()
	for i := 0; i < 3; i++ {
		if marg[i] != 0 {
			t.Errorf("marginal[%d] = %v after ideal negative", i, marg[i])
		}
	}
	for i := 3; i < 6; i++ {
		if math.Abs(marg[i]-0.2) > 1e-12 {
			t.Errorf("untested marginal[%d] = %v, want 0.2", i, marg[i])
		}
	}
	if got := m.Mass(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("mass = %v after update", got)
	}
	if m.Tests() != 1 {
		t.Errorf("Tests = %d", m.Tests())
	}
}

func TestUpdateIdealPositiveRaisesMarginals(t *testing.T) {
	pool := newTestPool(t)
	m := mustNew(t, pool, Config{Risks: uniformRisks(5, 0.1), Response: dilution.Ideal{}})
	poolMask := bitvec.FromIndices(1, 3)
	if err := m.Update(poolMask, dilution.Positive); err != nil {
		t.Fatal(err)
	}
	marg := m.Marginals()
	// P(i | pool positive) = p / P(pool has a positive); with p=0.1 each,
	// P(pos) = 1 - 0.9^2 = 0.19, so marginal = 0.1/0.19.
	want := 0.1 / 0.19
	for _, i := range []int{1, 3} {
		if math.Abs(marg[i]-want) > 1e-12 {
			t.Errorf("marginal[%d] = %v, want %v", i, marg[i], want)
		}
	}
	for _, i := range []int{0, 2, 4} {
		if math.Abs(marg[i]-0.1) > 1e-12 {
			t.Errorf("outside-pool marginal[%d] = %v, want 0.1", i, marg[i])
		}
	}
}

func TestUpdateMatchesBayesByHand(t *testing.T) {
	// Two subjects, noisy binary test on subject 0 alone.
	pool := newTestPool(t)
	resp := dilution.Binary{Sens: 0.8, Spec: 0.95}
	m := mustNew(t, pool, Config{Risks: []float64{0.3, 0.5}, Response: resp})
	if err := m.Update(bitvec.FromIndices(0), dilution.Positive); err != nil {
		t.Fatal(err)
	}
	// P(+|infected)=0.8, P(+|clean)=0.05.
	wantPost := (0.3 * 0.8) / (0.3*0.8 + 0.7*0.05)
	marg := m.Marginals()
	if math.Abs(marg[0]-wantPost) > 1e-12 {
		t.Fatalf("posterior[0] = %v, want %v", marg[0], wantPost)
	}
	if math.Abs(marg[1]-0.5) > 1e-12 {
		t.Fatalf("posterior[1] = %v, want unchanged 0.5", marg[1])
	}
}

func TestUpdateErrors(t *testing.T) {
	pool := newTestPool(t)
	m := mustNew(t, pool, Config{Risks: uniformRisks(4, 0.1), Response: dilution.Ideal{}})
	if err := m.Update(0, dilution.Positive); err == nil {
		t.Error("empty pool accepted")
	}
	if err := m.Update(bitvec.FromIndices(5), dilution.Positive); err == nil {
		t.Error("out-of-cohort pool accepted")
	}
	if m.Tests() != 0 {
		t.Errorf("failed updates incremented Tests to %d", m.Tests())
	}
}

func TestUpdateZeroLikelihoodRejectedAndStateRecoverable(t *testing.T) {
	pool := newTestPool(t)
	m := mustNew(t, pool, Config{Risks: uniformRisks(3, 0.2), Response: dilution.Ideal{}})
	pm := bitvec.FromIndices(0, 1, 2)
	if err := m.Update(pm, dilution.Negative); err != nil {
		t.Fatal(err)
	}
	// All subjects now certainly negative; a positive on the same pool is
	// impossible under the ideal response.
	if err := m.Update(pm, dilution.Positive); err == nil {
		t.Fatal("impossible outcome accepted")
	}
	// The failed update zeroed the working vector; the error contract says
	// the model is unusable only for that observation — mass must still be
	// renormalizable by the caller discarding. Here we just document that
	// the failure is detected and Tests was not incremented.
	if m.Tests() != 1 {
		t.Errorf("Tests = %d after rejected update", m.Tests())
	}
}

func TestUpdateTwoPassMatchesFused(t *testing.T) {
	pool := newTestPool(t)
	resp := dilution.Hyperbolic{MaxSens: 0.95, Spec: 0.98, D: 0.3}
	a := mustNew(t, pool, Config{Risks: uniformRisks(8, 0.15), Response: resp})
	b := a.Clone()
	pm := bitvec.FromIndices(0, 2, 4, 6)
	if err := a.Update(pm, dilution.Positive); err != nil {
		t.Fatal(err)
	}
	b.UpdateTwoPass(pm, dilution.Positive)
	for s := uint64(0); s < a.States(); s++ {
		x, y := a.StateMass(bitvec.Mask(s)), b.StateMass(bitvec.Mask(s))
		if math.Abs(x-y) > 1e-14*math.Max(1, x) {
			t.Fatalf("state %d: fused %v vs two-pass %v", s, x, y)
		}
	}
}

func TestSequentialUpdatesConsistent(t *testing.T) {
	// Order of conditionally independent test outcomes must not matter.
	pool := newTestPool(t)
	resp := dilution.Binary{Sens: 0.9, Spec: 0.97}
	mk := func() *Model {
		return mustNew(t, pool, Config{Risks: uniformRisks(6, 0.2), Response: resp})
	}
	pa, pb := bitvec.FromIndices(0, 1, 2), bitvec.FromIndices(3, 4)
	m1 := mk()
	if err := m1.Update(pa, dilution.Positive); err != nil {
		t.Fatal(err)
	}
	if err := m1.Update(pb, dilution.Negative); err != nil {
		t.Fatal(err)
	}
	m2 := mk()
	if err := m2.Update(pb, dilution.Negative); err != nil {
		t.Fatal(err)
	}
	if err := m2.Update(pa, dilution.Positive); err != nil {
		t.Fatal(err)
	}
	g1, g2 := m1.Marginals(), m2.Marginals()
	for i := range g1 {
		if math.Abs(g1[i]-g2[i]) > 1e-12 {
			t.Fatalf("order dependence at subject %d: %v vs %v", i, g1[i], g2[i])
		}
	}
}

func TestAccessorsAndRestore(t *testing.T) {
	pool := newTestPool(t)
	risks := []float64{0.1, 0.3, 0.2}
	resp := dilution.Binary{Sens: 0.9, Spec: 0.98}
	m := mustNew(t, pool, Config{Risks: risks, Response: resp})
	if m.Response().Name() != resp.Name() {
		t.Errorf("Response = %s", m.Response().Name())
	}
	got := m.Risks()
	got[0] = 0.9 // must be a copy
	if m.Risks()[0] != 0.1 {
		t.Error("Risks aliases internal state")
	}
	if m.Posterior().Len() != 8 {
		t.Errorf("Posterior len %d", m.Posterior().Len())
	}
	// Round-trip through Restore.
	if err := m.Update(bitvec.FromIndices(0, 1), dilution.Positive); err != nil {
		t.Fatal(err)
	}
	post := m.Posterior().Slice()
	r, err := Restore(pool, Config{Risks: risks, Response: resp}, post, m.Tests())
	if err != nil {
		t.Fatal(err)
	}
	if r.Tests() != m.Tests() {
		t.Errorf("restored Tests = %d", r.Tests())
	}
	for s := bitvec.Mask(0); s < 8; s++ {
		if math.Abs(r.StateMass(s)-m.StateMass(s)) > 1e-15 {
			t.Fatalf("state %v: %v vs %v", s, r.StateMass(s), m.StateMass(s))
		}
	}
	// Restore validation.
	if _, err := Restore(pool, Config{Risks: risks, Response: resp}, post[:4], 0); err == nil {
		t.Error("short posterior accepted")
	}
	bad := append([]float64(nil), post...)
	bad[2] = math.NaN()
	if _, err := Restore(pool, Config{Risks: risks, Response: resp}, bad, 0); err == nil {
		t.Error("NaN posterior accepted")
	}
	zero := make([]float64, 8)
	if _, err := Restore(pool, Config{Risks: risks, Response: resp}, zero, 0); err == nil {
		t.Error("zero-mass posterior accepted")
	}
	if _, err := Restore(pool, Config{Risks: risks, Response: resp}, post, -1); err == nil {
		t.Error("negative test count accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	pool := newTestPool(t)
	m := mustNew(t, pool, Config{Risks: uniformRisks(5, 0.2), Response: dilution.Ideal{}})
	c := m.Clone()
	if err := c.Update(bitvec.FromIndices(0, 1), dilution.Negative); err != nil {
		t.Fatal(err)
	}
	if got := m.Marginals()[0]; math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("original mutated by clone update: %v", got)
	}
	if got := c.Marginals()[0]; got != 0 {
		t.Fatalf("clone not updated: %v", got)
	}
	if c.Tests() != 1 || m.Tests() != 0 {
		t.Error("test counters entangled")
	}
}
