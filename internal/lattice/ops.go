package lattice

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/bitvec"
	"repro/internal/dilution"
	"repro/internal/engine"
	"repro/internal/prob"
)

// Marginals returns each subject's posterior infection probability,
// P(i infected | data) = Σ_{S ∋ i} π(S), computed for all N subjects in a
// single parallel ReduceVec pass over the lattice.
func (m *Model) Marginals() []float64 {
	return m.post.ReduceVec(m.n, func(_ int, offset uint64, data []float64, out []float64) {
		for j := range data {
			w := data[j]
			if w == 0 { //lint:allow floats exact-zero sparsity skip; near-zero mass must still count
				continue
			}
			for v := offset + uint64(j); v != 0; v &= v - 1 {
				out[bits.TrailingZeros64(v)] += w
			}
		}
	})
}

// NegMass returns P(S ∩ pool = ∅ | data): the posterior mass of the up-set
// of states in which the pool would contain no infected specimen. This is
// the quantity the Bayesian Halving Algorithm drives to ½.
func (m *Model) NegMass(pool bitvec.Mask) float64 {
	pm := uint64(pool)
	return m.post.ReduceSum(func(_ int, offset uint64, data []float64) prob.Accumulator {
		var acc prob.Accumulator
		for j := range data {
			if (offset+uint64(j))&pm == 0 {
				acc.Add(data[j])
			}
		}
		return acc
	})
}

// NegMasses evaluates NegMass for every candidate pool in one parallel
// sweep over the partitions — the SBGT test-selection scan. Within a
// partition the candidate loop is outermost so each candidate accumulates
// in a register over a sequential data pass; the partition (not the whole
// lattice) is what gets re-read per candidate, so the working set stays
// cache-resident — the batching win over the baseline's C full-vector
// passes.
func (m *Model) NegMasses(cands []bitvec.Mask) []float64 {
	if len(cands) == 0 {
		return nil
	}
	masks := make([]uint64, len(cands))
	for i, c := range cands {
		masks[i] = uint64(c)
	}
	return m.post.ReduceVec(len(cands), func(_ int, offset uint64, data []float64, out []float64) {
		for c, pm := range masks {
			var acc float64
			for j := range data {
				if (offset+uint64(j))&pm == 0 {
					acc += data[j]
				}
			}
			out[c] = acc
		}
	})
}

// PrefixNegMasses returns the clean-pool masses of every nested prefix of
// the given subject ordering: element i is P(S ∩ {order[0..i]} = ∅ | data).
//
// The prefixes are nested, so one lattice pass suffices: a state is clean
// for prefix i exactly when the minimum order-rank among its infected
// subjects exceeds i. The pass histograms posterior mass by that minimum
// rank; suffix sums of the histogram are the prefix masses. This replaces
// the len(order) separate scans a direct implementation needs and is the
// algorithmic core of SBGT's fast test selection. Subjects may appear in
// order at most once; duplicates panic.
func (m *Model) PrefixNegMasses(order []int) []float64 {
	k := len(order)
	if k == 0 {
		return nil
	}
	var rank [64]uint8
	for i := range rank {
		rank[i] = uint8(k)
	}
	for r, subj := range order {
		if subj < 0 || subj >= m.n {
			panic(fmt.Sprintf("lattice: order subject %d outside cohort of %d", subj, m.n))
		}
		if rank[subj] != uint8(k) {
			panic(fmt.Sprintf("lattice: duplicate subject %d in order", subj))
		}
		rank[subj] = uint8(r)
	}
	hist := m.post.ReduceVec(k+1, func(_ int, offset uint64, data []float64, out []float64) {
		for j := range data {
			w := data[j]
			if w == 0 { //lint:allow floats exact-zero sparsity skip; near-zero mass must still count
				continue
			}
			rmin := uint8(k)
			for v := offset + uint64(j); v != 0; v &= v - 1 {
				if r := rank[bits.TrailingZeros64(v)]; r < rmin {
					rmin = r
				}
			}
			out[rmin] += w
		}
	})
	// neg[i] = Σ_{r > i} hist[r]: mass whose first-ranked infected subject
	// lies beyond the prefix.
	neg := make([]float64, k)
	var acc prob.Accumulator
	for i := k - 1; i >= 0; i-- {
		acc.Add(hist[i+1])
		neg[i] = acc.Value()
	}
	return neg
}

// IntersectDist returns the posterior distribution of k = |S ∩ pool|, the
// number of infected specimens the pool would capture: element k holds
// P(|S ∩ pool| = k | data) for k in [0, |pool|]. Test selection uses it to
// form outcome-predictive probabilities: P(y) = Σ_k P(y | k, n)·P(k).
func (m *Model) IntersectDist(pool bitvec.Mask) []float64 {
	pm := uint64(pool)
	size := pool.Count()
	return m.post.ReduceVec(size+1, func(_ int, offset uint64, data []float64, out []float64) {
		for j := range data {
			if w := data[j]; w != 0 { //lint:allow floats exact-zero sparsity skip; near-zero mass must still count
				out[bits.OnesCount64((offset+uint64(j))&pm)] += w
			}
		}
	})
}

// Predictive returns the probability of observing outcome y on the given
// pool under the current posterior and the model's response:
// P(y | data) = Σ_k P(y | k, |pool|) · P(|S ∩ pool| = k | data).
func (m *Model) Predictive(pool bitvec.Mask, y dilution.Outcome) float64 {
	dist := m.IntersectDist(pool)
	size := pool.Count()
	var acc prob.Accumulator
	for k := 0; k <= size; k++ {
		if dist[k] != 0 { //lint:allow floats exact-zero sparsity skip; near-zero mass must still count
			acc.Add(dist[k] * m.resp.Likelihood(y, k, size))
		}
	}
	return acc.Value()
}

// Entropy returns the Shannon entropy of the posterior in bits: the
// residual classification uncertainty. An ideal halving test removes one
// bit per update.
func (m *Model) Entropy() float64 {
	nats := m.post.ReduceSum(func(_ int, _ uint64, data []float64) prob.Accumulator {
		var acc prob.Accumulator
		for _, p := range data {
			if p > 0 {
				acc.Add(-p * math.Log(p))
			}
		}
		return acc
	})
	return nats / math.Ln2
}

// MAP returns the maximum-a-posteriori lattice state and its mass. Ties
// resolve to the lowest state index, deterministically.
func (m *Model) MAP() (bitvec.Mask, float64) {
	type best struct {
		state uint64
		mass  float64
	}
	parts := make([]best, m.post.Parts())
	m.post.ForPartitions(func(p int, offset uint64, data []float64) {
		b := best{mass: math.Inf(-1)}
		for j := range data {
			if data[j] > b.mass {
				b = best{state: offset + uint64(j), mass: data[j]}
			}
		}
		parts[p] = b
	})
	top := best{mass: math.Inf(-1)}
	for _, b := range parts {
		if b.mass > top.mass || (b.mass == top.mass && b.state < top.state) { //lint:allow floats exact equality is the deterministic argmax tie-break
			top = b
		}
	}
	return bitvec.Mask(top.state), top.mass
}

// Mass returns the total posterior mass (≈1 between updates; exposed for
// invariant checks and tests).
func (m *Model) Mass() float64 { return m.post.Sum() }

// ExpectedInfected returns E[|S|], the posterior expected number of
// infected subjects, in one pass.
func (m *Model) ExpectedInfected() float64 {
	return m.post.ReduceSum(func(_ int, offset uint64, data []float64) prob.Accumulator {
		var acc prob.Accumulator
		for j := range data {
			if w := data[j]; w != 0 { //lint:allow floats exact-zero sparsity skip; near-zero mass must still count
				acc.Add(w * float64(bits.OnesCount64(offset+uint64(j))))
			}
		}
		return acc
	})
}

// Condition collapses subject onto a known status and returns the reduced
// model over the remaining N−1 subjects:
//
//	π'(S') ∝ π(embed(S'))  where embed re-inserts the subject's bit.
//
// Conditioning renormalizes, so the caller should have classified the
// subject at high posterior confidence first. The receiver is unchanged.
// It returns nil if the conditioning event has zero posterior mass or the
// model has only one subject left (conditioning would empty the lattice).
func (m *Model) Condition(subject int, positive bool) *Model {
	if subject < 0 || subject >= m.n || m.n <= 1 {
		return nil
	}
	nn := m.n - 1
	low := uint64(1)<<uint(subject) - 1 // bits below the removed subject
	bit := uint64(1) << uint(subject)
	out := &Model{
		n:     nn,
		risks: make([]float64, 0, nn),
		resp:  m.resp,
		post:  m.postLike(uint64(1) << uint(nn)),
		tests: m.tests,
	}
	out.risks = append(out.risks, m.risks[:subject]...)
	out.risks = append(out.risks, m.risks[subject+1:]...)
	src := m.post
	out.post.ForPartitions(func(_ int, offset uint64, data []float64) {
		for j := range data {
			sp := offset + uint64(j)
			old := (sp & low) | ((sp &^ low) << 1)
			if positive {
				old |= bit
			}
			data[j] = src.At(old)
		}
	})
	if total := out.post.Normalize(); !(total > 0) {
		return nil
	}
	return out
}

// postLike allocates a posterior vector of the given length on the same
// pool, keeping the partition count roughly matched to the parent.
func (m *Model) postLike(n uint64) *engine.Vector {
	parts := m.post.Parts()
	if uint64(parts) > n {
		parts = int(n)
	}
	return engine.NewVector(m.post.Pool(), n, parts)
}
