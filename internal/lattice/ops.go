package lattice

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/bitvec"
	"repro/internal/dilution"
	"repro/internal/engine"
	"repro/internal/prob"
)

// subLatticeMinPool is the dense/sub-lattice crossover: clean-mass
// queries enumerate the 2^(N−g) clean sub-lattice only when the pool has
// at least this many subjects; below it they take the full sequential
// sweep. The default of 1 (always sub-lattice) comes from the committed
// pool-size × N microbenchmark sweep in bench_test.go
// (BenchmarkNegMassCrossover): on the reference hardware the masked walk
// wins even at g=1 (~1.3×), because halving the visited states beats the
// dense scan's branch-per-state even before the exponential reduction
// kicks in. The tunable is kept for hardware where wide vector sweeps
// beat strided walks — and as the A5 ablation's dense arm.
var subLatticeMinPool = 1

// SubLatticeMinPool returns the current dense/sub-lattice crossover.
func SubLatticeMinPool() int { return subLatticeMinPool }

// SetSubLatticeMinPool tunes the dense/sub-lattice crossover and returns
// the previous value. Pools with at least k subjects take the sub-lattice
// walk; a large k forces the dense scan everywhere (the ablation arm).
// k < 1 is clamped to 1.
func SetSubLatticeMinPool(k int) int {
	if k < 1 {
		k = 1
	}
	prev := subLatticeMinPool
	subLatticeMinPool = k
	return prev
}

// radixBits is the split point of the radix-decomposed marginal walk:
// within one aligned block of 2^radixBits states every state shares its
// high bits, so the block's total mass is added to each shared high bit
// once per block instead of once per state. Per-state bit-walk work drops
// from popcount(s) to popcount(s mod 2^radixBits) ≤ radixBits.
const radixBits = 8

// radixBlock is the aligned block length of the radix marginal walk.
const radixBlock = 1 << radixBits

// addMarginalsWalk accumulates each state's mass onto its set bits with
// the per-state bit walk — the reference marginal kernel, retained as the
// ragged-edge helper of the radix path and the ablation arm.
func addMarginalsWalk(offset uint64, data []float64, out []float64) {
	for j := range data {
		w := data[j]
		if w == 0 { //lint:allow floats exact-zero sparsity skip; near-zero mass must still count
			continue
		}
		for v := offset + uint64(j); v != 0; v &= v - 1 {
			out[bits.TrailingZeros64(v)] += w
		}
	}
}

// addMarginalsRadix is the radix-decomposed marginal kernel: aligned
// 2^radixBits blocks walk only each state's low bits per state and add
// the block total to the shared high bits once per block. Ragged edges
// (partition boundaries are not block-aligned) fall back to the full
// walk. The accumulation order is fixed, so results are deterministic.
func addMarginalsRadix(offset uint64, data []float64, out []float64) {
	lo := offset
	hi := offset + uint64(len(data))
	head := (lo + radixBlock - 1) &^ uint64(radixBlock-1)
	tail := hi &^ uint64(radixBlock-1)
	if head >= tail {
		addMarginalsWalk(offset, data, out)
		return
	}
	addMarginalsWalk(lo, data[:head-lo], out)
	for b := head; b < tail; b += radixBlock {
		blk := data[b-lo : b-lo+radixBlock]
		var blockSum float64
		for j := range blk {
			w := blk[j]
			if w == 0 { //lint:allow floats exact-zero sparsity skip; near-zero mass must still count
				continue
			}
			blockSum += w
			for v := uint64(j); v != 0; v &= v - 1 {
				out[bits.TrailingZeros64(v)] += w
			}
		}
		if blockSum == 0 { //lint:allow floats exact-zero sparsity skip; near-zero mass must still count
			continue
		}
		for v := b >> radixBits; v != 0; v &= v - 1 {
			out[radixBits+bits.TrailingZeros64(v)] += blockSum
		}
	}
	addMarginalsWalk(tail, data[tail-lo:], out)
}

// Marginals returns each subject's posterior infection probability,
// P(i infected | data) = Σ_{S ∋ i} π(S), computed for all N subjects in a
// single parallel ReduceVec pass with the radix-decomposed bit walk.
func (m *Model) Marginals() []float64 {
	return m.post.ReduceVec(m.n, func(_ int, offset uint64, data []float64, out []float64) {
		addMarginalsRadix(offset, data, out)
	})
}

// MarginalsWalk is the pre-radix marginal kernel (full per-state bit
// walk). It exists for the A5 structure-aware kernel ablation; results
// agree with Marginals up to accumulation-order rounding.
func (m *Model) MarginalsWalk() []float64 {
	return m.post.ReduceVec(m.n, func(_ int, offset uint64, data []float64, out []float64) {
		addMarginalsWalk(offset, data, out)
	})
}

// NegMass returns P(S ∩ pool = ∅ | data): the posterior mass of the up-set
// of states in which the pool would contain no infected specimen. This is
// the quantity the Bayesian Halving Algorithm drives to ½.
//
// The clean states form the 2^(N−g) sub-lattice of subsets of ^pool, so
// for pools at or above the SubLatticeMinPool crossover the kernel
// enumerates only that sub-lattice via engine.Vector.ReduceSubset;
// smaller pools keep the full sequential sweep, which wins on bandwidth
// when the state reduction is small.
func (m *Model) NegMass(pool bitvec.Mask) float64 {
	pm := uint64(pool)
	if pool.Count() >= subLatticeMinPool {
		return m.post.ReduceSubset(0, uint64(bitvec.Full(m.n))&^pm)
	}
	return m.negMassDense(pm)
}

// negMassDense is the full-sweep NegMass kernel: the small-pool fallback
// and the bit-for-bit reference for the sub-lattice walk (both visit the
// clean states in increasing index order with the same accumulator).
func (m *Model) negMassDense(pm uint64) float64 {
	return m.post.ReduceSum(func(_ int, offset uint64, data []float64) prob.Accumulator {
		var acc prob.Accumulator
		for j := range data {
			if (offset+uint64(j))&pm == 0 {
				acc.Add(data[j])
			}
		}
		return acc
	})
}

// negMassesTile is the candidate-scan tile length in states: 4096
// float64s = 32 KiB, sized so one tile stays L1-resident while every
// candidate re-reads it.
const negMassesTile = 1 << 12

// negMassesTiled scores every candidate over one partition in L1-sized
// tiles: the tile loop is outermost and the candidate loop re-reads the
// resident tile, so the partition's memory traffic is paid once per tile
// rather than once per candidate. Per-candidate tile partials accumulate
// into out in fixed tile order, keeping the result deterministic.
func negMassesTiled(offset uint64, data []float64, masks []uint64, out []float64) {
	for t0 := 0; t0 < len(data); t0 += negMassesTile {
		t1 := t0 + negMassesTile
		if t1 > len(data) {
			t1 = len(data)
		}
		tile := data[t0:t1]
		toff := offset + uint64(t0)
		for c, pm := range masks {
			var acc float64
			for j := range tile {
				if (toff+uint64(j))&pm == 0 {
					acc += tile[j]
				}
			}
			out[c] += acc
		}
	}
}

// NegMasses evaluates NegMass for every candidate pool in one parallel
// sweep over the partitions — the SBGT test-selection scan. Within a
// partition the scan is tiled (see negMassesTiled): a 32 KiB tile stays
// L1-resident across all candidates, so a partition larger than L2 is no
// longer streamed from memory once per candidate — the batching win over
// the baseline's C full-vector passes, made cache-oblivious to the
// candidate count.
func (m *Model) NegMasses(cands []bitvec.Mask) []float64 {
	if len(cands) == 0 {
		return nil
	}
	masks := make([]uint64, len(cands))
	for i, c := range cands {
		masks[i] = uint64(c)
	}
	return m.post.ReduceVec(len(cands), func(_ int, offset uint64, data []float64, out []float64) {
		negMassesTiled(offset, data, masks, out)
	})
}

// NegMassesUntiled is the pre-tiling candidate scan (candidate-outer loop
// re-reading the whole partition per candidate). It exists for the A5
// structure-aware kernel ablation; results agree with NegMasses up to
// accumulation-order rounding.
func (m *Model) NegMassesUntiled(cands []bitvec.Mask) []float64 {
	if len(cands) == 0 {
		return nil
	}
	masks := make([]uint64, len(cands))
	for i, c := range cands {
		masks[i] = uint64(c)
	}
	return m.post.ReduceVec(len(cands), func(_ int, offset uint64, data []float64, out []float64) {
		for c, pm := range masks {
			var acc float64
			for j := range data {
				if (offset+uint64(j))&pm == 0 {
					acc += data[j]
				}
			}
			out[c] = acc
		}
	})
}

// PrefixNegMasses returns the clean-pool masses of every nested prefix of
// the given subject ordering: element i is P(S ∩ {order[0..i]} = ∅ | data).
//
// The prefixes are nested, so one lattice pass suffices: a state is clean
// for prefix i exactly when the minimum order-rank among its infected
// subjects exceeds i. The pass histograms posterior mass by that minimum
// rank; suffix sums of the histogram are the prefix masses. This replaces
// the len(order) separate scans a direct implementation needs and is the
// algorithmic core of SBGT's fast test selection. Subjects may appear in
// order at most once; duplicates panic.
func (m *Model) PrefixNegMasses(order []int) []float64 {
	k := len(order)
	if k == 0 {
		return nil
	}
	var rank [64]uint8
	for i := range rank {
		rank[i] = uint8(k)
	}
	for r, subj := range order {
		if subj < 0 || subj >= m.n {
			panic(fmt.Sprintf("lattice: order subject %d outside cohort of %d", subj, m.n))
		}
		if rank[subj] != uint8(k) {
			panic(fmt.Sprintf("lattice: duplicate subject %d in order", subj))
		}
		rank[subj] = uint8(r)
	}
	hist := m.post.ReduceVec(k+1, func(_ int, offset uint64, data []float64, out []float64) {
		// Same tiling as the candidate scan: the min-rank pass is a single
		// sweep, but tiling keeps its access pattern identical to
		// negMassesTiled so the two selection kernels stay cache-coherent
		// when the halving selector interleaves them on one partition.
		for t0 := 0; t0 < len(data); t0 += negMassesTile {
			t1 := t0 + negMassesTile
			if t1 > len(data) {
				t1 = len(data)
			}
			tile := data[t0:t1]
			toff := offset + uint64(t0)
			for j := range tile {
				w := tile[j]
				if w == 0 { //lint:allow floats exact-zero sparsity skip; near-zero mass must still count
					continue
				}
				rmin := uint8(k)
				for v := toff + uint64(j); v != 0; v &= v - 1 {
					if r := rank[bits.TrailingZeros64(v)]; r < rmin {
						rmin = r
						if rmin == 0 {
							break // rank 0 is the floor; the rest of the walk cannot lower it
						}
					}
				}
				out[rmin] += w
			}
		}
	})
	// neg[i] = Σ_{r > i} hist[r]: mass whose first-ranked infected subject
	// lies beyond the prefix.
	neg := make([]float64, k)
	var acc prob.Accumulator
	for i := k - 1; i >= 0; i-- {
		acc.Add(hist[i+1])
		neg[i] = acc.Value()
	}
	return neg
}

// IntersectDist returns the posterior distribution of k = |S ∩ pool|, the
// number of infected specimens the pool would capture: element k holds
// P(|S ∩ pool| = k | data) for k in [0, |pool|].
//
// Unlike NegMass, the distribution's support is the whole lattice (every
// state contributes to some slot), so there is no sub-lattice to restrict
// the pass to; it stays a single full sweep. Its dominant consumer,
// Predictive, no longer routes through it: flat-tail responses collapse
// to one clean-sub-lattice query and general responses fold the
// likelihood table inline (see Predictive), so this materialized form is
// for callers that need the full distribution.
func (m *Model) IntersectDist(pool bitvec.Mask) []float64 {
	pm := uint64(pool)
	size := pool.Count()
	return m.post.ReduceVec(size+1, func(_ int, offset uint64, data []float64, out []float64) {
		for j := range data {
			if w := data[j]; w != 0 { //lint:allow floats exact-zero sparsity skip; near-zero mass must still count
				out[bits.OnesCount64((offset+uint64(j))&pm)] += w
			}
		}
	})
}

// Predictive returns the probability of observing outcome y on the given
// pool under the current posterior and the model's response:
// P(y | data) = Σ_k P(y | k, |pool|) · P(|S ∩ pool| = k | data).
//
// When the likelihood table is flat for k ≥ 1 — the response cannot tell
// one infected specimen from many, as with the Binary and Ideal assay
// models — the sum telescopes to lik₀·P(k=0) + lik₁·(1 − P(k=0)), and
// P(k=0) is a clean-sub-lattice query: the whole predictive costs one
// 2^(N−g) walk instead of a 2^N pass. Dilution-sensitive responses take
// a single fused pass that folds the likelihood table over the intersect
// count inline, replacing the former IntersectDist + dot-product pair.
func (m *Model) Predictive(pool bitvec.Mask, y dilution.Outcome) float64 {
	size := pool.Count()
	lik := make([]float64, size+1)
	for k := 0; k <= size; k++ {
		lik[k] = m.resp.Likelihood(y, k, size)
	}
	pm := uint64(pool)
	if size >= subLatticeMinPool {
		flat := true
		for k := 2; k <= size; k++ {
			if lik[k] != lik[1] { //lint:allow floats detects an exactly count-independent likelihood table, not a numeric tolerance test
				flat = false
				break
			}
		}
		if flat {
			nm := m.post.ReduceSubset(0, uint64(bitvec.Full(m.n))&^pm)
			return lik[0]*nm + lik[1]*(1-nm)
		}
	}
	return m.post.ReduceSum(func(_ int, offset uint64, data []float64) prob.Accumulator {
		var acc prob.Accumulator
		for j := range data {
			if w := data[j]; w != 0 { //lint:allow floats exact-zero sparsity skip; near-zero mass must still count
				acc.Add(w * lik[bits.OnesCount64((offset+uint64(j))&pm)])
			}
		}
		return acc
	})
}

// Entropy returns the Shannon entropy of the posterior in bits: the
// residual classification uncertainty. An ideal halving test removes one
// bit per update.
func (m *Model) Entropy() float64 {
	nats := m.post.ReduceSum(func(_ int, _ uint64, data []float64) prob.Accumulator {
		var acc prob.Accumulator
		for _, p := range data {
			if p > 0 {
				acc.Add(-p * math.Log(p))
			}
		}
		return acc
	})
	return nats / math.Ln2
}

// MAP returns the maximum-a-posteriori lattice state and its mass. Ties
// resolve to the lowest state index, deterministically.
func (m *Model) MAP() (bitvec.Mask, float64) {
	type best struct {
		state uint64
		mass  float64
	}
	parts := make([]best, m.post.Parts())
	m.post.ForPartitions(func(p int, offset uint64, data []float64) {
		b := best{mass: math.Inf(-1)}
		for j := range data {
			if data[j] > b.mass {
				b = best{state: offset + uint64(j), mass: data[j]}
			}
		}
		parts[p] = b
	})
	top := best{mass: math.Inf(-1)}
	for _, b := range parts {
		if b.mass > top.mass || (b.mass == top.mass && b.state < top.state) { //lint:allow floats exact equality is the deterministic argmax tie-break
			top = b
		}
	}
	return bitvec.Mask(top.state), top.mass
}

// Mass returns the total posterior mass (≈1 between updates; exposed for
// invariant checks and tests).
func (m *Model) Mass() float64 { return m.post.Sum() }

// ExpectedInfected returns E[|S|], the posterior expected number of
// infected subjects, in one pass.
func (m *Model) ExpectedInfected() float64 {
	return m.post.ReduceSum(func(_ int, offset uint64, data []float64) prob.Accumulator {
		var acc prob.Accumulator
		for j := range data {
			if w := data[j]; w != 0 { //lint:allow floats exact-zero sparsity skip; near-zero mass must still count
				acc.Add(w * float64(bits.OnesCount64(offset+uint64(j))))
			}
		}
		return acc
	})
}

// Condition collapses subject onto a known status and returns the reduced
// model over the remaining N−1 subjects:
//
//	π'(S') ∝ π(embed(S'))  where embed re-inserts the subject's bit.
//
// Conditioning renormalizes, so the caller should have classified the
// subject at high posterior confidence first. The receiver is unchanged.
// It returns nil if the conditioning event has zero posterior mass or the
// model has only one subject left (conditioning would empty the lattice).
func (m *Model) Condition(subject int, positive bool) *Model {
	if subject < 0 || subject >= m.n || m.n <= 1 {
		return nil
	}
	nn := m.n - 1
	low := uint64(1)<<uint(subject) - 1 // bits below the removed subject
	bit := uint64(1) << uint(subject)
	out := &Model{
		n:     nn,
		risks: make([]float64, 0, nn),
		resp:  m.resp,
		post:  m.postLike(uint64(1) << uint(nn)),
		tests: m.tests,
	}
	out.risks = append(out.risks, m.risks[:subject]...)
	out.risks = append(out.risks, m.risks[subject+1:]...)
	src := m.post
	out.post.ForPartitions(func(_ int, offset uint64, data []float64) {
		for j := range data {
			sp := offset + uint64(j)
			old := (sp & low) | ((sp &^ low) << 1)
			if positive {
				old |= bit
			}
			data[j] = src.At(old)
		}
	})
	if total := out.post.Normalize(); !(total > 0) {
		return nil
	}
	return out
}

// ConditionInPlace is the zero-allocation form of Condition: it collapses
// subject onto a known status inside the receiver's own backing array and
// returns the receiver, now a model over the remaining N−1 subjects. The
// surviving states sit at indices old(s') ≥ s' (dropping a bit never
// decreases the packed index), so the collapse is a forward monotone
// gather and ShrinkGather can reuse the storage with no copy-out.
//
// Like Condition it returns nil when the event has zero posterior mass or
// only one subject remains — but because the gather destroys the old
// contents, the event mass is preflighted with an exact sub-lattice
// reduction first, so on nil the receiver is untouched and still usable
// (core.Session relies on that to retry the complementary event).
func (m *Model) ConditionInPlace(subject int, positive bool) *Model {
	if subject < 0 || subject >= m.n || m.n <= 1 {
		return nil
	}
	low := uint64(1)<<uint(subject) - 1 // bits below the removed subject
	bit := uint64(1) << uint(subject)
	var base uint64
	if positive {
		base = bit
	}
	// Preflight: the surviving states form the sub-lattice {base | f : f ⊆
	// ^bit}, so their mass is one ReduceSubset away. Rejecting here keeps
	// the receiver intact.
	if mass := m.post.ReduceSubset(base, uint64(bitvec.Full(m.n))&^bit); !(mass > 0) {
		return nil
	}
	nn := m.n - 1
	m.post.ShrinkGather(uint64(1)<<uint(nn), m.post.Parts(), func(dst, src []float64) {
		for sp := range dst {
			spp := uint64(sp)
			dst[sp] = src[(spp&low)|((spp&^low)<<1)|base]
		}
	})
	m.post.Normalize()
	m.risks = append(m.risks[:subject], m.risks[subject+1:]...)
	m.n = nn
	return m
}

// postLike allocates a posterior vector of the given length on the same
// pool, keeping the partition count roughly matched to the parent.
func (m *Model) postLike(n uint64) *engine.Vector {
	parts := m.post.Parts()
	if uint64(parts) > n {
		parts = int(n)
	}
	return engine.NewVector(m.post.Pool(), n, parts)
}
