package lattice

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
	"repro/internal/dilution"
	"repro/internal/prob"
	"repro/internal/rng"
)

// TestInvariantsUnderRandomCampaigns drives random update sequences
// through random models and checks every structural invariant the rest of
// the system relies on.
func TestInvariantsUnderRandomCampaigns(t *testing.T) {
	pool := newTestPool(t)
	responses := []dilution.Response{
		dilution.Ideal{},
		dilution.Binary{Sens: 0.9, Spec: 0.97},
		dilution.Hyperbolic{MaxSens: 0.97, Spec: 0.99, D: 0.4},
		dilution.Subsample{Q: 0.9, Spec: 0.99},
	}
	r := rng.New(808)
	for trial := 0; trial < 20; trial++ {
		n := 4 + r.Intn(6)
		risks := make([]float64, n)
		for i := range risks {
			risks[i] = 0.01 + 0.6*r.Float64()
		}
		resp := responses[trial%len(responses)]
		m := mustNew(t, pool, Config{Risks: risks, Response: resp})
		var truth bitvec.Mask
		for i := 0; i < n; i++ {
			if r.Bernoulli(risks[i]) {
				truth = truth.With(i)
			}
		}
		for round := 0; round < 8; round++ {
			pm := bitvec.Mask(r.Uint64()) & bitvec.Full(n)
			if pm == 0 {
				pm = bitvec.FromIndices(r.Intn(n))
			}
			y := resp.Sample(r, truth.IntersectCount(pm), pm.Count())
			if err := m.Update(pm, y); err != nil {
				// A rejected (zero-likelihood) outcome must leave the
				// failure visible; stop this trial.
				break
			}

			// Invariant: total mass is 1 after every accepted update.
			if mass := m.Mass(); math.Abs(mass-1) > 1e-9 {
				t.Fatalf("trial %d round %d: mass %v", trial, round, mass)
			}
			marg := m.Marginals()
			for i, g := range marg {
				if g < -1e-12 || g > 1+1e-12 {
					t.Fatalf("trial %d: marginal[%d] = %v", trial, i, g)
				}
			}
			// Invariant: E[|S|] equals the marginal sum (linearity).
			if d := math.Abs(m.ExpectedInfected() - prob.Sum(marg)); d > 1e-9 {
				t.Fatalf("trial %d: E[|S|] off marginal sum by %v", trial, d)
			}
			// Invariant: NegMass(A) <= 1 - marg_i for every member i.
			probe := bitvec.Mask(r.Uint64()) & bitvec.Full(n)
			if probe != 0 {
				nm := m.NegMass(probe)
				for _, i := range probe.Indices() {
					if nm > 1-marg[i]+1e-9 {
						t.Fatalf("trial %d: NegMass(%v)=%v exceeds 1-marg[%d]=%v",
							trial, probe, nm, i, 1-marg[i])
					}
				}
				// Invariant: IntersectDist sums to 1 and its zero slot is
				// exactly NegMass.
				dist := m.IntersectDist(probe)
				if math.Abs(prob.Sum(dist)-1) > 1e-9 {
					t.Fatalf("trial %d: IntersectDist sums to %v", trial, prob.Sum(dist))
				}
				if math.Abs(dist[0]-nm) > 1e-9 {
					t.Fatalf("trial %d: dist[0]=%v vs NegMass=%v", trial, dist[0], nm)
				}
				// Invariant: binary predictive probabilities sum to 1.
				pp := m.Predictive(probe, dilution.Positive)
				pn := m.Predictive(probe, dilution.Negative)
				if math.Abs(pp+pn-1) > 1e-9 {
					t.Fatalf("trial %d: predictive sums to %v", trial, pp+pn)
				}
			}
			// Invariant: entropy is within [0, N] bits.
			if h := m.Entropy(); h < -1e-9 || h > float64(n)+1e-9 {
				t.Fatalf("trial %d: entropy %v outside [0,%d]", trial, h, n)
			}
		}
	}
}

// TestPrefixNegMassesMatchesDirectScan cross-checks the one-pass
// histogram against per-candidate scans on random posteriors and orders.
func TestPrefixNegMassesMatchesDirectScan(t *testing.T) {
	pool := newTestPool(t)
	r := rng.New(909)
	for trial := 0; trial < 10; trial++ {
		n := 5 + r.Intn(5)
		m := mustNew(t, pool, Config{Risks: uniformRisks(n, 0.05+0.3*r.Float64()), Response: dilution.Binary{Sens: 0.92, Spec: 0.98}})
		if err := m.Update(bitvec.Full(n), dilution.Positive); err != nil {
			t.Fatal(err)
		}
		order := r.Perm(n)[:1+r.Intn(n)]
		fast := m.PrefixNegMasses(order)
		var prefix bitvec.Mask
		cands := make([]bitvec.Mask, 0, len(order))
		for _, s := range order {
			prefix = prefix.With(s)
			cands = append(cands, prefix)
		}
		slow := m.NegMasses(cands)
		for i := range cands {
			if math.Abs(fast[i]-slow[i]) > 1e-12 {
				t.Fatalf("trial %d: prefix %d: histogram %v vs scan %v", trial, i, fast[i], slow[i])
			}
		}
		// Monotone: adding subjects can only shrink the clean mass.
		for i := 1; i < len(fast); i++ {
			if fast[i] > fast[i-1]+1e-12 {
				t.Fatalf("trial %d: prefix masses not decreasing: %v", trial, fast)
			}
		}
	}
}

func TestPrefixNegMassesPanics(t *testing.T) {
	pool := newTestPool(t)
	m := mustNew(t, pool, Config{Risks: uniformRisks(4, 0.1), Response: dilution.Ideal{}})
	for name, order := range map[string][]int{
		"duplicate":    {1, 1},
		"out-of-range": {5},
		"negative":     {-1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s order did not panic", name)
				}
			}()
			m.PrefixNegMasses(order)
		}()
	}
	if got := m.PrefixNegMasses(nil); got != nil {
		t.Errorf("empty order returned %v", got)
	}
}

// TestUpdateCommutesProperty: conditionally independent outcomes commute.
func TestUpdateCommutesProperty(t *testing.T) {
	pool := newTestPool(t)
	f := func(seed uint16) bool {
		r := rng.New(uint64(seed))
		n := 4 + int(seed)%4
		risks := uniformRisks(n, 0.1+0.2*r.Float64())
		resp := dilution.Binary{Sens: 0.9, Spec: 0.96}
		a := mustNew(t, pool, Config{Risks: risks, Response: resp})
		b := a.Clone()
		p1 := bitvec.Mask(r.Uint64())&bitvec.Full(n) | 1
		p2 := bitvec.Mask(r.Uint64())&bitvec.Full(n) | 2
		y1, y2 := dilution.Positive, dilution.Negative
		if err := a.Update(p1, y1); err != nil {
			return true
		}
		if err := a.Update(p2, y2); err != nil {
			return true
		}
		if err := b.Update(p2, y2); err != nil {
			return true
		}
		if err := b.Update(p1, y1); err != nil {
			return true
		}
		ga, gb := a.Marginals(), b.Marginals()
		for i := range ga {
			if math.Abs(ga[i]-gb[i]) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
