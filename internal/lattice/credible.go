package lattice

import (
	"fmt"
	"sort"

	"repro/internal/bitvec"
	"repro/internal/prob"
)

// credibleMaxSubjects bounds CredibleSet: materializing (mass, state)
// pairs for sorting costs 16·2^N bytes, which stops being an "analysis
// call" past 2^24 states.
const credibleMaxSubjects = 24

// CredibleSet returns the smallest set of lattice states whose posterior
// mass reaches level — the highest-posterior-density region that
// "precisely quantifies uncertainty in diagnoses": its size is the number
// of infection scenarios still compatible with the data at that
// confidence. States arrive in descending mass order (ties broken by
// state index, so the result is deterministic); the second return is the
// mass actually covered (≥ level, except when the entire lattice carries
// less, which cannot happen for a normalized posterior).
//
// It panics when level is outside (0, 1] or the cohort exceeds 24
// subjects (use the sparse model's CredibleSet at larger N).
func (m *Model) CredibleSet(level float64) ([]bitvec.Mask, float64) {
	if !(level > 0 && level <= 1) {
		panic(fmt.Sprintf("lattice: credible level %v outside (0,1]", level))
	}
	if m.n > credibleMaxSubjects {
		panic(fmt.Sprintf("lattice: CredibleSet on %d subjects exceeds the %d-subject analysis bound", m.n, credibleMaxSubjects))
	}
	type entry struct {
		state uint64
		mass  float64
	}
	entries := make([]entry, 0, m.post.Len())
	for _, w := range m.post.Slice() {
		entries = append(entries, entry{uint64(len(entries)), w})
	}
	sort.Slice(entries, func(a, b int) bool {
		if entries[a].mass != entries[b].mass { //lint:allow floats exact inequality is a deterministic sort tie-break, not a numeric test
			return entries[a].mass > entries[b].mass
		}
		return entries[a].state < entries[b].state
	})
	var out []bitvec.Mask
	var acc prob.Accumulator
	for _, e := range entries {
		if e.mass <= 0 {
			break
		}
		out = append(out, bitvec.Mask(e.state))
		acc.Add(e.mass)
		if acc.Value() >= level {
			break
		}
	}
	return out, acc.Value()
}
