package lattice

import (
	"math"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/dilution"
	"repro/internal/sparse"
)

func TestCredibleSetHandComputed(t *testing.T) {
	pool := newTestPool(t)
	// Two subjects with risks 0.4 and 0.2: masses are
	// {}: .48, {0}: .32, {1}: .12, {0,1}: .08.
	m := mustNew(t, pool, Config{Risks: []float64{0.4, 0.2}, Response: dilution.Ideal{}})
	set, mass := m.CredibleSet(0.5)
	if len(set) != 2 || set[0] != 0 || set[1] != bitvec.FromIndices(0) {
		t.Fatalf("50%% set = %v", set)
	}
	if math.Abs(mass-0.8) > 1e-12 {
		t.Fatalf("covered mass = %v, want 0.8", mass)
	}
	set, mass = m.CredibleSet(1)
	if len(set) != 4 {
		t.Fatalf("100%% set has %d states", len(set))
	}
	if math.Abs(mass-1) > 1e-12 {
		t.Fatalf("full mass = %v", mass)
	}
}

func TestCredibleSetMonotoneInLevel(t *testing.T) {
	pool := newTestPool(t)
	m := mustNew(t, pool, Config{Risks: uniformRisks(8, 0.15), Response: dilution.Binary{Sens: 0.9, Spec: 0.98}})
	if err := m.Update(bitvec.FromIndices(0, 1, 2), dilution.Positive); err != nil {
		t.Fatal(err)
	}
	prevLen := 0
	for _, level := range []float64{0.1, 0.5, 0.9, 0.99, 1} {
		set, mass := m.CredibleSet(level)
		if mass < level-1e-12 {
			t.Fatalf("level %v: covered only %v", level, mass)
		}
		if len(set) < prevLen {
			t.Fatalf("set shrank as level grew: %d -> %d at %v", prevLen, len(set), level)
		}
		prevLen = len(set)
	}
}

func TestCredibleSetShrinksWithEvidence(t *testing.T) {
	pool := newTestPool(t)
	m := mustNew(t, pool, Config{Risks: uniformRisks(10, 0.2), Response: dilution.Ideal{}})
	before, _ := m.CredibleSet(0.95)
	if err := m.Update(bitvec.Full(10), dilution.Negative); err != nil {
		t.Fatal(err)
	}
	after, _ := m.CredibleSet(0.95)
	if len(after) != 1 || after[0] != 0 {
		t.Fatalf("post-clearance 95%% set = %v", after)
	}
	if len(before) <= len(after) {
		t.Fatalf("evidence did not shrink the set: %d -> %d", len(before), len(after))
	}
}

func TestCredibleSetPanics(t *testing.T) {
	pool := newTestPool(t)
	m := mustNew(t, pool, Config{Risks: uniformRisks(3, 0.1), Response: dilution.Ideal{}})
	for _, level := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("level %v did not panic", level)
				}
			}()
			m.CredibleSet(level)
		}()
	}
}

func TestCredibleSetMatchesSparse(t *testing.T) {
	pool := newTestPool(t)
	risks := []float64{0.05, 0.2, 0.1, 0.3, 0.15}
	resp := dilution.Binary{Sens: 0.95, Spec: 0.99}
	dense := mustNew(t, pool, Config{Risks: risks, Response: resp})
	sp, err := sparse.New(sparse.Config{Risks: risks, Response: resp, Eps: 0})
	if err != nil {
		t.Fatal(err)
	}
	pm := bitvec.FromIndices(1, 3)
	if err := dense.Update(pm, dilution.Positive); err != nil {
		t.Fatal(err)
	}
	if err := sp.Update(pm, dilution.Positive); err != nil {
		t.Fatal(err)
	}
	dSet, dMass := dense.CredibleSet(0.9)
	sSet, sMass := sp.CredibleSet(0.9)
	if math.Abs(dMass-sMass) > 1e-10 {
		t.Fatalf("covered mass %v vs %v", dMass, sMass)
	}
	if len(dSet) != len(sSet) {
		t.Fatalf("set sizes %d vs %d", len(dSet), len(sSet))
	}
	for i := range dSet {
		if dSet[i] != sSet[i] {
			t.Fatalf("state %d: %v vs %v", i, dSet[i], sSet[i])
		}
	}
}
