// Package lattice implements the Bayesian lattice model for group testing.
//
// For a cohort of N subjects, the classification state space is the Boolean
// lattice 2^N: state S (a bitvec.Mask) means "exactly the subjects in S are
// infected". The model maintains a full posterior distribution over these
// 2^N states, stored as an engine.Vector partitioned across workers — the
// in-process analogue of SBGT's Spark RDD of lattice mass.
//
// The global index of a state in the vector is the state mask itself, so
// kernels recover the state from the partition offset with no lookup
// tables. All three SBGT computational kernels live here or directly on top:
//
//   - Update: multiply every state's mass by the dilution-aware likelihood
//     of an observed pooled-test outcome and renormalize (fused single pass
//     plus one scale pass),
//   - Marginals / NegMass / NegMasses: the reductions that drive
//     classification and the halving test-selection scan,
//   - Condition: collapse a classified subject out of the lattice, halving
//     the state space (how sequential surveillance keeps the model small).
package lattice

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/bitvec"
	"repro/internal/dilution"
	"repro/internal/engine"
	"repro/internal/prob"
)

// MaxSubjects bounds the cohort size of one lattice model. 2^30 states of
// float64 is 8 GiB; anything past that needs the cluster runtime, and the
// index arithmetic below assumes the full lattice fits a uint64 count.
const MaxSubjects = 30

// Config configures a lattice model.
type Config struct {
	// Risks holds each subject's prior infection probability. Its length
	// sets the cohort size N. Every entry must lie in (0, 1): risk 0 or 1
	// is a classified subject and should not enter the lattice.
	Risks []float64
	// Response is the test-response model used by Update. Required.
	Response dilution.Response
	// Parts is the partition count for the posterior vector; <= 0 selects
	// the engine default (4 per worker).
	Parts int
}

// Model is a Bayesian lattice model over 2^N infection states. Methods
// that read or write the posterior are not safe for concurrent use with
// each other; the parallelism is inside each operation.
type Model struct {
	n     int
	risks []float64
	resp  dilution.Response
	post  *engine.Vector
	tests int // pooled tests absorbed so far (diagnostics)
}

// New builds the prior lattice model on the given pool.
//
// The prior is the independent-risk product measure
//
//	π(S) = Π_{i∈S} p_i · Π_{i∉S} (1−p_i),
//
// evaluated per state as the odds product Π_{i∈S} p_i/(1−p_i) times the
// all-negative constant, which costs O(|S|) per state instead of O(N).
func New(pool *engine.Pool, cfg Config) (*Model, error) {
	n := len(cfg.Risks)
	if n == 0 {
		return nil, fmt.Errorf("lattice: empty cohort")
	}
	if n > MaxSubjects {
		return nil, fmt.Errorf("lattice: cohort size %d exceeds max %d (use the cluster runtime)", n, MaxSubjects)
	}
	if cfg.Response == nil {
		return nil, fmt.Errorf("lattice: nil response model")
	}
	odds := make([]float64, n)
	logBase := 0.0
	for i, p := range cfg.Risks {
		if !(p > 0 && p < 1) {
			return nil, fmt.Errorf("lattice: risk[%d] = %v outside (0,1)", i, p)
		}
		odds[i] = p / (1 - p)
		logBase += math.Log1p(-p)
	}
	base := math.Exp(logBase)
	m := &Model{
		n:     n,
		risks: append([]float64(nil), cfg.Risks...),
		resp:  cfg.Response,
		post:  engine.NewVector(pool, uint64(1)<<uint(n), cfg.Parts),
	}
	m.post.ForPartitions(func(_ int, offset uint64, data []float64) {
		for j := range data {
			s := offset + uint64(j)
			w := base
			for v := s; v != 0; v &= v - 1 {
				w *= odds[bits.TrailingZeros64(v)]
			}
			data[j] = w
		}
	})
	// The product measure sums to 1 analytically; normalize anyway to wash
	// out rounding so downstream invariant checks can be strict.
	if total := m.post.Normalize(); !(total > 0) {
		return nil, fmt.Errorf("lattice: degenerate prior (total %v)", total)
	}
	return m, nil
}

// N returns the number of unclassified subjects in the lattice.
func (m *Model) N() int { return m.n }

// States returns the number of lattice states, 2^N.
func (m *Model) States() uint64 { return m.post.Len() }

// Tests returns how many pooled-test outcomes have been absorbed.
func (m *Model) Tests() int { return m.tests }

// Response returns the test-response model updates use.
func (m *Model) Response() dilution.Response { return m.resp }

// Risks returns the prior risk vector (a copy).
func (m *Model) Risks() []float64 { return append([]float64(nil), m.risks...) }

// Posterior exposes the partitioned posterior for engine-level consumers
// (the halving scan and the cluster runtime). Callers must not mutate it.
func (m *Model) Posterior() *engine.Vector { return m.post }

// StateMass returns the posterior mass of one lattice state.
func (m *Model) StateMass(s bitvec.Mask) float64 { return m.post.At(uint64(s)) }

// Update folds one observed pooled-test outcome into the posterior:
// every state S is reweighted by the likelihood of outcome y for a pool
// with k = |S ∩ pool| infected among |pool| specimens, then the lattice is
// renormalized. The likelihood depends on the state only through k, so it
// is precomputed into a (|pool|+1)-entry table and the reweighting is a
// single fused multiply-and-accumulate pass over every partition.
//
// Update returns an error if the pool is empty, references subjects outside
// the cohort, or the outcome has zero likelihood under every state (which
// would zero the lattice).
func (m *Model) Update(pool bitvec.Mask, y dilution.Outcome) error {
	if pool == 0 {
		return fmt.Errorf("lattice: empty pool")
	}
	if !pool.SubsetOf(bitvec.Full(m.n)) {
		return fmt.Errorf("lattice: pool %v outside cohort of %d", pool, m.n)
	}
	size := pool.Count()
	lik := make([]float64, size+1)
	for k := 0; k <= size; k++ {
		l := m.resp.Likelihood(y, k, size)
		if l < 0 || math.IsNaN(l) {
			return fmt.Errorf("lattice: response %q returned invalid likelihood %v at k=%d n=%d", m.resp.Name(), l, k, size)
		}
		lik[k] = l
	}
	pm := uint64(pool)
	total := m.post.ReduceSum(func(_ int, offset uint64, data []float64) prob.Accumulator {
		var acc prob.Accumulator
		for j := range data {
			s := offset + uint64(j)
			w := data[j] * lik[bits.OnesCount64(s&pm)]
			data[j] = w
			acc.Add(w)
		}
		return acc
	})
	if !(total > 0) || math.IsInf(total, 0) {
		return fmt.Errorf("lattice: outcome %v on pool %v has zero total likelihood (total %v)", y, pool, total)
	}
	m.post.Scale(1 / total)
	m.tests++
	return nil
}

// UpdateTwoPass is the unfused variant of Update (separate reweight and
// normalize passes over the lattice). It exists for the A2 fusion ablation;
// results are identical to Update up to one rounding. It panics on the
// error cases Update reports, since it is bench-only.
func (m *Model) UpdateTwoPass(pool bitvec.Mask, y dilution.Outcome) {
	size := pool.Count()
	lik := make([]float64, size+1)
	for k := 0; k <= size; k++ {
		lik[k] = m.resp.Likelihood(y, k, size)
	}
	pm := uint64(pool)
	m.post.ForPartitions(func(_ int, offset uint64, data []float64) {
		for j := range data {
			s := offset + uint64(j)
			data[j] *= lik[bits.OnesCount64(s&pm)]
		}
	})
	if total := m.post.Normalize(); !(total > 0) {
		panic(fmt.Sprintf("lattice: zero-likelihood outcome in UpdateTwoPass (total %v)", total))
	}
	m.tests++
}

// Restore rebuilds a model from a previously captured posterior (state
// order, length 2^len(cfg.Risks)) and test counter — the checkpointing
// hook used by internal/latticeio. The posterior is renormalized on load
// so a checkpoint written mid-update cannot smuggle in an unnormalized
// lattice.
func Restore(pool *engine.Pool, cfg Config, posterior []float64, tests int) (*Model, error) {
	m, err := New(pool, cfg)
	if err != nil {
		return nil, err
	}
	if uint64(len(posterior)) != m.post.Len() {
		return nil, fmt.Errorf("lattice: posterior has %d states, cohort of %d needs %d",
			len(posterior), m.n, m.post.Len())
	}
	for _, w := range posterior {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("lattice: invalid posterior mass %v", w)
		}
	}
	m.post.ForPartitions(func(_ int, offset uint64, data []float64) {
		copy(data, posterior[offset:])
	})
	if total := m.post.Normalize(); !(total > 0) {
		return nil, fmt.Errorf("lattice: restored posterior has zero mass")
	}
	if tests < 0 {
		return nil, fmt.Errorf("lattice: negative test count %d", tests)
	}
	m.tests = tests
	return m, nil
}

// Clone returns an independent copy of the model (posterior deep-copied,
// same pool). Look-ahead selection evaluates hypothetical outcomes on
// clones.
func (m *Model) Clone() *Model {
	return &Model{
		n:     m.n,
		risks: append([]float64(nil), m.risks...),
		resp:  m.resp,
		post:  m.post.Clone(),
		tests: m.tests,
	}
}
