package lattice

import (
	"math"
	"math/bits"

	"repro/internal/bitvec"
	"repro/internal/prob"
)

// Summary is the fused one-pass digest of the posterior: everything a
// session round reads between tests. Computing the five statistics
// together costs one lattice sweep of memory traffic instead of the four
// separate passes the individual kernels pay (marginals, entropy, MAP,
// expected-infected — mass rides along for invariant checks).
type Summary struct {
	// Marginals is each subject's posterior infection probability.
	Marginals []float64
	// EntropyBits is the Shannon entropy of the posterior in bits.
	EntropyBits float64
	// MAPState is the maximum-a-posteriori state (ties to the lowest
	// state index) and MAPMass its posterior mass.
	MAPState bitvec.Mask
	MAPMass  float64
	// ExpectedInfected is E[|S|], the expected number of infected.
	ExpectedInfected float64
	// Mass is the total posterior mass (≈1 between updates).
	Mass float64
}

// summaryPartial is one partition's contribution to the fused summary.
type summaryPartial struct {
	marg           []float64
	ent, exp, mass prob.Accumulator
	bestState      uint64
	bestMass       float64
}

// Summary computes the fused posterior digest in a single parallel pass.
// Per-partition partials merge in ascending partition order (compensated
// for the additive statistics, lowest-state tie-break for the argmax), so
// the result is deterministic like every other reduction. The marginal
// component uses the same radix-decomposed bit walk as Marginals; the
// scalar statistics fold into the block loop so the posterior is read
// once.
func (m *Model) Summary() *Summary {
	parts := make([]summaryPartial, m.post.Parts())
	m.post.ForPartitions(func(p int, offset uint64, data []float64) {
		pt := summaryPartial{marg: make([]float64, m.n), bestMass: math.Inf(-1)}
		lo := offset
		hi := offset + uint64(len(data))
		head := (lo + radixBlock - 1) &^ uint64(radixBlock-1)
		tail := hi &^ uint64(radixBlock-1)
		if head >= tail {
			pt.summarizeWalk(lo, data)
		} else {
			pt.summarizeWalk(lo, data[:head-lo])
			for b := head; b < tail; b += radixBlock {
				blk := data[b-lo : b-lo+radixBlock]
				highCount := float64(bits.OnesCount64(b >> radixBits))
				var blockSum float64
				for j := range blk {
					w := blk[j]
					s := b + uint64(j)
					pt.mass.Add(w)
					if w > pt.bestMass {
						pt.bestState, pt.bestMass = s, w
					}
					if w == 0 { //lint:allow floats exact-zero sparsity skip; near-zero mass must still count
						continue
					}
					blockSum += w
					if w > 0 {
						pt.ent.Add(-w * math.Log(w))
					}
					pt.exp.Add(w * (highCount + float64(bits.OnesCount64(uint64(j)))))
					for v := uint64(j); v != 0; v &= v - 1 {
						pt.marg[bits.TrailingZeros64(v)] += w
					}
				}
				if blockSum == 0 { //lint:allow floats exact-zero sparsity skip; near-zero mass must still count
					continue
				}
				for v := b >> radixBits; v != 0; v &= v - 1 {
					pt.marg[radixBits+bits.TrailingZeros64(v)] += blockSum
				}
			}
			pt.summarizeWalk(tail, data[tail-lo:])
		}
		parts[p] = pt
	})

	out := &Summary{Marginals: make([]float64, m.n), MAPMass: math.Inf(-1)}
	margAccs := make([]prob.Accumulator, m.n)
	var ent, exp, mass prob.Accumulator
	for _, pt := range parts {
		for j, x := range pt.marg {
			margAccs[j].Add(x)
		}
		ent.Merge(pt.ent)
		exp.Merge(pt.exp)
		mass.Merge(pt.mass)
		if pt.bestMass > out.MAPMass || (pt.bestMass == out.MAPMass && pt.bestState < uint64(out.MAPState)) { //lint:allow floats exact equality is the deterministic argmax tie-break
			out.MAPState, out.MAPMass = bitvec.Mask(pt.bestState), pt.bestMass
		}
	}
	for j := range margAccs {
		out.Marginals[j] = margAccs[j].Value()
	}
	out.EntropyBits = ent.Value() / math.Ln2
	out.ExpectedInfected = exp.Value()
	out.Mass = mass.Value()
	return out
}

// summarizeWalk folds a ragged (non-block-aligned) run of states into the
// partial with the full per-state bit walk.
func (pt *summaryPartial) summarizeWalk(offset uint64, data []float64) {
	for j := range data {
		w := data[j]
		s := offset + uint64(j)
		pt.mass.Add(w)
		if w > pt.bestMass {
			pt.bestState, pt.bestMass = s, w
		}
		if w == 0 { //lint:allow floats exact-zero sparsity skip; near-zero mass must still count
			continue
		}
		if w > 0 {
			pt.ent.Add(-w * math.Log(w))
		}
		pt.exp.Add(w * float64(bits.OnesCount64(s)))
		for v := s; v != 0; v &= v - 1 {
			pt.marg[bits.TrailingZeros64(v)] += w
		}
	}
}
