package lattice

import (
	"math"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/dilution"
	"repro/internal/rng"
)

// randomPosterior builds a model with a non-trivial posterior: random
// risks, a few absorbed outcomes, and (optionally) exact zeros punched
// into the lattice to exercise the sparsity-skip paths.
func randomPosterior(t *testing.T, r *rng.Source, n int, zeros bool) *Model {
	t.Helper()
	pool := newTestPool(t)
	risks := make([]float64, n)
	for i := range risks {
		risks[i] = 0.02 + 0.5*r.Float64()
	}
	m := mustNew(t, pool, Config{Risks: risks, Response: dilution.Binary{Sens: 0.93, Spec: 0.98}, Parts: 1 + r.Intn(7)})
	for round := 0; round < 3; round++ {
		pm := bitvec.Mask(r.Uint64()) & bitvec.Full(n)
		if pm == 0 {
			pm = bitvec.FromIndices(r.Intn(n))
		}
		y := dilution.Negative
		if r.Bernoulli(0.5) {
			y = dilution.Positive
		}
		if err := m.Update(pm, y); err != nil {
			t.Fatal(err)
		}
	}
	if zeros {
		// Punch exact zeros into random states (and whole aligned blocks, so
		// the radix kernel's blockSum==0 skip is reached for n >= 9).
		post := m.Posterior()
		for k := 0; k < 1<<uint(n-2); k++ {
			post.Set(uint64(r.Intn(1<<uint(n))), 0)
		}
		if n > 8 {
			base := (uint64(r.Intn(1<<uint(n))) >> 8) << 8
			for s := base; s < base+256; s++ {
				post.Set(s, 0)
			}
		}
	}
	return m
}

// TestNegMassSubLatticeBitForBit: the masked sub-lattice walk must equal
// the dense filtered scan exactly — both enumerate the clean states in
// increasing index order through the same per-partition accumulators.
func TestNegMassSubLatticeBitForBit(t *testing.T) {
	r := rng.New(101)
	for trial := 0; trial < 30; trial++ {
		n := 5 + r.Intn(7)
		m := randomPosterior(t, r, n, trial%3 == 0)
		for probe := 0; probe < 8; probe++ {
			pm := bitvec.Mask(r.Uint64()) & bitvec.Full(n)
			if pm == 0 {
				continue
			}
			prev := SetSubLatticeMinPool(1) // force the sub-lattice walk
			got := m.NegMass(pm)
			SetSubLatticeMinPool(prev)
			want := m.negMassDense(uint64(pm))
			if got != want {
				t.Fatalf("trial %d pool %v: sub-lattice %v vs dense %v", trial, pm, got, want)
			}
		}
	}
}

// TestSubLatticeCrossoverTunable pins the setter contract the A5 ablation
// and the bench sweep rely on.
func TestSubLatticeCrossoverTunable(t *testing.T) {
	def := SubLatticeMinPool()
	if def < 1 {
		t.Fatalf("default crossover %d < 1", def)
	}
	if prev := SetSubLatticeMinPool(9); prev != def {
		t.Fatalf("setter returned %d, want previous %d", prev, def)
	}
	if got := SubLatticeMinPool(); got != 9 {
		t.Fatalf("crossover %d after set, want 9", got)
	}
	if SetSubLatticeMinPool(0); SubLatticeMinPool() != 1 {
		t.Fatalf("crossover %d after clamping set, want 1", SubLatticeMinPool())
	}
	SetSubLatticeMinPool(def)
}

// TestSummaryBitForBit: every Summary field must equal its standalone
// kernel exactly — the fused pass reuses the same per-partition loops,
// accumulators, and rank-ordered merges, so no tolerance is needed.
func TestSummaryBitForBit(t *testing.T) {
	r := rng.New(202)
	for trial := 0; trial < 20; trial++ {
		n := 5 + r.Intn(7)
		m := randomPosterior(t, r, n, trial%2 == 0)
		sum := m.Summary()
		marg := m.Marginals()
		for i := range marg {
			if sum.Marginals[i] != marg[i] {
				t.Fatalf("trial %d: fused marginal[%d] %v vs %v", trial, i, sum.Marginals[i], marg[i])
			}
		}
		if h := m.Entropy(); sum.EntropyBits != h {
			t.Fatalf("trial %d: fused entropy %v vs %v", trial, sum.EntropyBits, h)
		}
		if st, mass := m.MAP(); sum.MAPState != st || sum.MAPMass != mass {
			t.Fatalf("trial %d: fused MAP %v/%v vs %v/%v", trial, sum.MAPState, sum.MAPMass, st, mass)
		}
		if e := m.ExpectedInfected(); sum.ExpectedInfected != e {
			t.Fatalf("trial %d: fused E[|S|] %v vs %v", trial, sum.ExpectedInfected, e)
		}
		if tot := m.Mass(); sum.Mass != tot {
			t.Fatalf("trial %d: fused mass %v vs %v", trial, sum.Mass, tot)
		}
	}
}

// TestMarginalsRadixMatchesWalk: the radix decomposition regroups the
// high-bit additions (one blockSum add replaces up to 256 per-state
// adds), so results match the reference walk to accumulation-order
// rounding — each marginal is a sum of <= 2^12 non-negative terms <= 1
// here, bounding the drift far below 1e-12 — not bit-for-bit. Exact-zero
// states and whole zeroed blocks (the sparsity skips) are exercised.
func TestMarginalsRadixMatchesWalk(t *testing.T) {
	r := rng.New(303)
	for trial := 0; trial < 20; trial++ {
		n := 6 + r.Intn(6) // up to 4096 states; n > 8 crosses block alignment
		m := randomPosterior(t, r, n, true)
		radix := m.Marginals()
		walk := m.MarginalsWalk()
		for i := range walk {
			if math.Abs(radix[i]-walk[i]) > 1e-12 {
				t.Fatalf("trial %d: radix marginal[%d] %v vs walk %v", trial, i, radix[i], walk[i])
			}
		}
	}
}

// TestNegMassesTiledMatchesUntiled: tiling regroups each candidate's
// plain partition sum into per-tile partial sums, so results match to
// accumulation-order rounding (sums of non-negative terms totalling <= 1;
// drift bounded well below 1e-12), not bit-for-bit. Partitions both
// smaller and larger than the 4096-state tile are covered.
func TestNegMassesTiledMatchesUntiled(t *testing.T) {
	r := rng.New(404)
	for _, n := range []int{8, 13, 14} { // 14: a single partition spans > 2 tiles
		m := randomPosterior(t, r, n, false)
		cands := make([]bitvec.Mask, 0, 24)
		for i := 0; i < 24; i++ {
			pm := bitvec.Mask(r.Uint64()) & bitvec.Full(n)
			if pm == 0 {
				pm = bitvec.FromIndices(i % n)
			}
			cands = append(cands, pm)
		}
		tiled := m.NegMasses(cands)
		flat := m.NegMassesUntiled(cands)
		for c := range cands {
			if math.Abs(tiled[c]-flat[c]) > 1e-12 {
				t.Fatalf("n=%d cand %d: tiled %v vs untiled %v", n, c, tiled[c], flat[c])
			}
		}
	}
}

// TestPredictiveMatchesDefinition checks both Predictive paths — the
// flat-tail sub-lattice shortcut (count-independent likelihood tables)
// and the fused general pass — against the direct IntersectDist dot
// product.
func TestPredictiveMatchesDefinition(t *testing.T) {
	r := rng.New(505)
	responses := []dilution.Response{
		dilution.Binary{Sens: 0.9, Spec: 0.97},                 // flat tail
		dilution.Ideal{},                                       // flat tail, exact 0/1
		dilution.Hyperbolic{MaxSens: 0.95, Spec: 0.99, D: 0.4}, // dilution-dependent
	}
	for trial := 0; trial < 18; trial++ {
		n := 5 + r.Intn(6)
		pool := newTestPool(t)
		resp := responses[trial%len(responses)]
		m := mustNew(t, pool, Config{Risks: uniformRisks(n, 0.05+0.2*r.Float64()), Response: resp})
		if err := m.Update(bitvec.Full(n), dilution.Positive); err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 6; probe++ {
			pm := bitvec.Mask(r.Uint64()) & bitvec.Full(n)
			if pm == 0 {
				continue
			}
			for _, y := range []dilution.Outcome{dilution.Negative, dilution.Positive} {
				got := m.Predictive(pm, y)
				dist := m.IntersectDist(pm)
				want := 0.0
				for k, w := range dist {
					want += w * resp.Likelihood(y, k, pm.Count())
				}
				if math.Abs(got-want) > 1e-12 {
					t.Fatalf("trial %d pool %v y=%v: predictive %v vs dot %v", trial, pm, y, got, want)
				}
			}
		}
	}
}

// TestConditionInPlaceMatchesCondition: the in-place collapse must agree
// with the allocating path state-for-state, and a zero-mass rejection
// must leave the receiver untouched and usable.
func TestConditionInPlaceMatchesCondition(t *testing.T) {
	r := rng.New(606)
	for trial := 0; trial < 20; trial++ {
		n := 4 + r.Intn(7)
		m := randomPosterior(t, r, n, false)
		subject := r.Intn(n)
		positive := r.Bernoulli(0.5)
		want := m.Condition(subject, positive) // allocating reference; receiver unchanged
		got := m.ConditionInPlace(subject, positive)
		if (want == nil) != (got == nil) {
			t.Fatalf("trial %d: in-place nil=%v, reference nil=%v", trial, got == nil, want == nil)
		}
		if want == nil {
			continue
		}
		if got != m {
			t.Fatalf("trial %d: in-place did not return the receiver", trial)
		}
		if got.N() != want.N() || got.States() != want.States() {
			t.Fatalf("trial %d: shape %d/%d vs %d/%d", trial, got.N(), got.States(), want.N(), want.States())
		}
		for s := uint64(0); s < got.States(); s++ {
			if g, w := got.StateMass(bitvec.Mask(s)), want.StateMass(bitvec.Mask(s)); g != w {
				t.Fatalf("trial %d: state %d mass %v vs %v", trial, s, g, w)
			}
		}
		gr, wr := got.Risks(), want.Risks()
		for i := range wr {
			if gr[i] != wr[i] {
				t.Fatalf("trial %d: risk[%d] %v vs %v", trial, i, gr[i], wr[i])
			}
		}
	}
}

// TestConditionInPlaceZeroMassRejection: conditioning on an impossible
// event must return nil and leave the receiver intact (core.Session
// retries the complementary event on the same model).
func TestConditionInPlaceZeroMassRejection(t *testing.T) {
	pool := newTestPool(t)
	m := mustNew(t, pool, Config{Risks: uniformRisks(4, 0.2), Response: dilution.Ideal{}})
	// An ideal negative test on subject 0 makes "subject 0 infected" a
	// zero-mass event.
	if err := m.Update(bitvec.FromIndices(0), dilution.Negative); err != nil {
		t.Fatal(err)
	}
	before := m.Marginals()
	if got := m.ConditionInPlace(0, true); got != nil {
		t.Fatal("zero-mass event did not reject")
	}
	if m.N() != 4 || m.States() != 16 {
		t.Fatalf("receiver shape changed: N=%d states=%d", m.N(), m.States())
	}
	after := m.Marginals()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("receiver marginal[%d] changed: %v vs %v", i, before[i], after[i])
		}
	}
	// The complementary event must still work on the same receiver.
	if got := m.ConditionInPlace(0, false); got == nil {
		t.Fatal("complementary event rejected")
	}
	if m.N() != 3 {
		t.Fatalf("N=%d after complementary collapse", m.N())
	}
}
