package engine

import (
	"testing"

	"repro/internal/prob"
	"repro/internal/rng"
)

// bruteMinSubsetGE is the O(2^popcount) reference: enumerate every
// submask of free in increasing order and return the first >= x.
func bruteMinSubsetGE(free, x uint64) (uint64, bool) {
	f := uint64(0)
	for {
		if f >= x {
			return f, true
		}
		if f == free {
			return 0, false
		}
		f = (f - free) & free
	}
}

func TestMinSubsetGEExhaustive(t *testing.T) {
	// Every mask over 8 bits against every threshold in range: the greedy
	// construction must match brute-force enumeration exactly.
	for free := uint64(0); free < 1<<8; free++ {
		for x := uint64(0); x <= 1<<8; x++ {
			got, gok := minSubsetGE(free, x)
			want, wok := bruteMinSubsetGE(free, x)
			if gok != wok || (gok && got != want) {
				t.Fatalf("minSubsetGE(%#b, %d) = %d,%v want %d,%v", free, x, got, gok, want, wok)
			}
		}
	}
}

func TestMinSubsetGESparseHighBits(t *testing.T) {
	// Spot checks with high, sparse masks where brute force still runs.
	r := rng.New(42)
	for trial := 0; trial < 2000; trial++ {
		free := r.Uint64() & r.Uint64() & r.Uint64() // ~8 set bits on average
		x := r.Uint64() & (free | r.Uint64()&0xffff)
		got, gok := minSubsetGE(free, x)
		want, wok := bruteMinSubsetGE(free, x)
		if gok != wok || (gok && got != want) {
			t.Fatalf("minSubsetGE(%#x, %#x) = %#x,%v want %#x,%v", free, x, got, gok, want, wok)
		}
	}
}

// TestReduceSubsetMatchesFilteredScan asserts the masked sub-lattice walk
// is bit-for-bit identical to the dense scan that skips non-members: both
// visit member indices in increasing order through the same per-partition
// compensated accumulators.
func TestReduceSubsetMatchesFilteredScan(t *testing.T) {
	p := newTestPool(t)
	r := rng.New(7)
	for trial := 0; trial < 50; trial++ {
		nBits := 6 + r.Intn(5) // 64 .. 1024 states
		n := uint64(1) << uint(nBits)
		v := NewVector(p, n, 1+r.Intn(9))
		v.Map(func(i uint64, _ float64) float64 { return r.Float64() })
		full := n - 1
		free := r.Uint64() & full
		base := r.Uint64() & full &^ free
		got := v.ReduceSubset(base, free)
		want := v.ReduceSum(func(_ int, offset uint64, data []float64) prob.Accumulator {
			var acc prob.Accumulator
			for j := range data {
				s := offset + uint64(j)
				if s&^free == base {
					acc.Add(data[j])
				}
			}
			return acc
		})
		if got != want {
			t.Fatalf("trial %d (base %#x free %#x): sub-lattice %v vs filtered %v", trial, base, free, got, want)
		}
	}
}

func TestReduceSubsetPanics(t *testing.T) {
	p := newTestPool(t)
	v := NewVector(p, 16, 2)
	for name, args := range map[string][2]uint64{
		"overlap":      {1, 1},
		"out-of-range": {8, 8}, // base|free = 16 >= len
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			v.ReduceSubset(args[0], args[1])
		}()
	}
}

func TestShrinkGather(t *testing.T) {
	p := newTestPool(t)
	v := NewVector(p, 16, 4)
	v.Map(func(i uint64, _ float64) float64 { return float64(i) })
	// Forward monotone gather: keep the even positions.
	v.ShrinkGather(8, 2, func(dst, src []float64) {
		for i := range dst {
			dst[i] = src[2*i]
		}
	})
	if v.Len() != 8 || v.Parts() != 2 {
		t.Fatalf("len=%d parts=%d after shrink", v.Len(), v.Parts())
	}
	for i := uint64(0); i < 8; i++ {
		if v.At(i) != float64(2*i) {
			t.Fatalf("element %d = %v, want %v", i, v.At(i), float64(2*i))
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("growing ShrinkGather did not panic")
			}
		}()
		v.ShrinkGather(9, 0, func(dst, src []float64) {})
	}()
}
