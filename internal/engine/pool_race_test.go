package engine

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestCloseRacesSubmit hammers the submit/Close window: many goroutines run
// parallel-for operations while another closes the pool mid-flight. Before
// submit and Close shared a lock, a Close landing between submit's
// closed-check and its channel send panicked with a send on a closed
// channel. Every For must still cover its full range via the inline
// fallback, and nothing may panic. Run under -race in CI.
func TestCloseRacesSubmit(t *testing.T) {
	const (
		rounds     = 50
		submitters = 8
		iterations = 1 << 10
	)
	for round := 0; round < rounds; round++ {
		p := NewPool(4)
		var start, done sync.WaitGroup
		start.Add(submitters)
		done.Add(submitters)
		var total atomic.Int64
		for s := 0; s < submitters; s++ {
			go func() {
				defer done.Done()
				start.Done()
				start.Wait()
				p.For(iterations, 7, func(lo, hi int) {
					total.Add(int64(hi - lo))
				})
			}()
		}
		start.Wait()
		p.Close()
		done.Wait()
		if got, want := total.Load(), int64(submitters*iterations); got != want {
			t.Fatalf("round %d: covered %d indices, want %d", round, got, want)
		}
	}
}

// TestCloseConcurrentWithClose checks idempotence under contention: many
// goroutines racing Close on one pool must all return, exactly one closing
// the channel.
func TestCloseConcurrentWithClose(t *testing.T) {
	p := NewPool(2)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Close()
		}()
	}
	wg.Wait()
	// The pool stays usable inline after close.
	n := 0
	p.For(100, 0, func(lo, hi int) { n += hi - lo })
	if n != 100 {
		t.Fatalf("post-close inline For covered %d, want 100", n)
	}
}
