package engine

import (
	"testing"

	"repro/internal/prob"
)

func benchVector(b *testing.B, n uint64, parts int) *Vector {
	b.Helper()
	pool := NewPool(0)
	b.Cleanup(pool.Close)
	v := NewVector(pool, n, parts)
	v.Fill(1.0 / float64(n))
	return v
}

func BenchmarkForPartitionsScale(b *testing.B) {
	v := benchVector(b, 1<<20, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Scale(1.0000001)
	}
}

func BenchmarkSum(b *testing.B) {
	v := benchVector(b, 1<<20, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = v.Sum()
	}
}

func BenchmarkReduceVec8(b *testing.B) {
	v := benchVector(b, 1<<20, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.ReduceVec(8, func(_ int, offset uint64, data []float64, out []float64) {
			for j := range data {
				out[int(offset+uint64(j))&7] += data[j]
			}
		})
	}
}

func BenchmarkReduceSum(b *testing.B) {
	v := benchVector(b, 1<<20, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.ReduceSum(func(_ int, _ uint64, data []float64) prob.Accumulator {
			var acc prob.Accumulator
			for _, x := range data {
				acc.Add(x)
			}
			return acc
		})
	}
}

func BenchmarkPoolForOverhead(b *testing.B) {
	// Empty bodies: measures pure scheduling cost per For call.
	pool := NewPool(0)
	defer pool.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool.For(64, 1, func(lo, hi int) {})
	}
}
