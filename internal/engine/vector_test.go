package engine

import (
	"math"
	"testing"

	"repro/internal/prob"
)

func newTestPool(t *testing.T) *Pool {
	t.Helper()
	p := NewPool(4)
	t.Cleanup(p.Close)
	return p
}

func TestNewVectorLayout(t *testing.T) {
	p := newTestPool(t)
	v := NewVector(p, 103, 10)
	if v.Len() != 103 || v.Parts() != 10 {
		t.Fatalf("len=%d parts=%d", v.Len(), v.Parts())
	}
	// Offsets must be contiguous and cover the range.
	var covered uint64
	for i := 0; i < v.Parts(); i++ {
		if v.offsets[i] != covered {
			t.Fatalf("partition %d offset %d, want %d", i, v.offsets[i], covered)
		}
		covered += uint64(len(v.parts[i]))
		// Balanced: sizes differ by at most 1.
		if d := len(v.parts[i]) - len(v.parts[v.Parts()-1]); d < 0 || d > 1 {
			t.Fatalf("partition %d unbalanced (size %d vs %d)", i, len(v.parts[i]), len(v.parts[v.Parts()-1]))
		}
	}
	if covered != 103 {
		t.Fatalf("partitions cover %d elements", covered)
	}
}

func TestNewVectorEdges(t *testing.T) {
	p := newTestPool(t)
	if v := NewVector(p, 0, 4); v.Len() != 0 || v.Parts() != 0 {
		t.Errorf("empty vector: len=%d parts=%d", v.Len(), v.Parts())
	}
	// More partitions than elements collapses to one element per partition.
	if v := NewVector(p, 3, 100); v.Parts() != 3 {
		t.Errorf("tiny vector parts = %d, want 3", v.Parts())
	}
	// Default partition count.
	if v := NewVector(p, 1000, 0); v.Parts() != p.Workers()*4 {
		t.Errorf("default parts = %d", v.Parts())
	}
}

func TestNewVectorNilPoolPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil pool did not panic")
		}
	}()
	NewVector(nil, 10, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	p := newTestPool(t)
	v := NewVector(p, 97, 7)
	for i := uint64(0); i < v.Len(); i++ {
		v.Set(i, float64(i)*1.5)
	}
	for i := uint64(0); i < v.Len(); i++ {
		if got := v.At(i); got != float64(i)*1.5 {
			t.Fatalf("At(%d) = %v", i, got)
		}
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	p := newTestPool(t)
	v := NewVector(p, 5, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range did not panic")
		}
	}()
	v.At(5)
}

func TestForPartitionsSeesGlobalOffsets(t *testing.T) {
	p := newTestPool(t)
	v := NewVector(p, 50, 6)
	v.ForPartitions(func(_ int, offset uint64, data []float64) {
		for j := range data {
			data[j] = float64(offset + uint64(j))
		}
	})
	for i := uint64(0); i < 50; i++ {
		if v.At(i) != float64(i) {
			t.Fatalf("element %d = %v", i, v.At(i))
		}
	}
}

func TestFillMapScale(t *testing.T) {
	p := newTestPool(t)
	v := NewVector(p, 64, 5)
	v.Fill(2)
	v.Map(func(i uint64, x float64) float64 { return x + float64(i) })
	v.Scale(0.5)
	for i := uint64(0); i < 64; i++ {
		want := (2 + float64(i)) / 2
		if got := v.At(i); got != want {
			t.Fatalf("element %d = %v, want %v", i, got, want)
		}
	}
}

func TestSumMatchesSequential(t *testing.T) {
	p := newTestPool(t)
	v := NewVector(p, 10000, 16)
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = 1.0 / float64(i+1)
		v.Set(uint64(i), xs[i])
	}
	got, want := v.Sum(), prob.Sum(xs)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Sum = %.17g, sequential = %.17g", got, want)
	}
}

func TestSumDeterministicAcrossRuns(t *testing.T) {
	p := newTestPool(t)
	v := NewVector(p, 65537, 13)
	v.Map(func(i uint64, _ float64) float64 {
		return math.Sin(float64(i)) * 1e-7
	})
	first := v.Sum()
	for run := 0; run < 20; run++ {
		if got := v.Sum(); got != first {
			t.Fatalf("run %d: Sum = %.17g, first = %.17g", run, got, first)
		}
	}
}

func TestNormalize(t *testing.T) {
	p := newTestPool(t)
	v := NewVector(p, 1000, 8)
	v.Fill(0.5)
	total := v.Normalize()
	if math.Abs(total-500) > 1e-9 {
		t.Fatalf("total = %v", total)
	}
	if got := v.Sum(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("post-normalize sum = %v", got)
	}
}

func TestNormalizeDegenerate(t *testing.T) {
	p := newTestPool(t)
	v := NewVector(p, 10, 2)
	if total := v.Normalize(); total != 0 {
		t.Fatalf("zero-vector total = %v", total)
	}
	if v.At(3) != 0 {
		t.Fatal("degenerate Normalize mutated data")
	}
}

func TestReduceSumPartialsMergedInOrder(t *testing.T) {
	p := newTestPool(t)
	v := NewVector(p, 100, 10)
	got := v.ReduceSum(func(part int, _ uint64, _ []float64) prob.Accumulator {
		var acc prob.Accumulator
		acc.Add(float64(part))
		return acc
	})
	if got != 45 {
		t.Fatalf("ReduceSum = %v, want 45", got)
	}
}

func TestReduceVec(t *testing.T) {
	p := newTestPool(t)
	v := NewVector(p, 1000, 8)
	v.Fill(1)
	// out[0] counts elements; out[1] sums global indices.
	got := v.ReduceVec(2, func(_ int, offset uint64, data []float64, out []float64) {
		for j := range data {
			out[0] += data[j]
			out[1] += float64(offset + uint64(j))
		}
	})
	if got[0] != 1000 {
		t.Fatalf("count = %v", got[0])
	}
	if want := float64(999) * 1000 / 2; got[1] != want {
		t.Fatalf("index sum = %v, want %v", got[1], want)
	}
}

func TestReduceVecZeroOutputs(t *testing.T) {
	p := newTestPool(t)
	v := NewVector(p, 10, 2)
	if got := v.ReduceVec(0, func(_ int, _ uint64, _, _ []float64) {}); len(got) != 0 {
		t.Fatalf("ReduceVec(0) returned %v", got)
	}
}

func TestCloneAndCopyFrom(t *testing.T) {
	p := newTestPool(t)
	v := NewVector(p, 77, 5)
	v.Map(func(i uint64, _ float64) float64 { return float64(i) })
	c := v.Clone()
	c.Scale(2)
	if v.At(10) != 10 || c.At(10) != 20 {
		t.Fatal("Clone aliases original storage")
	}
	v.CopyFrom(c)
	if v.At(10) != 20 {
		t.Fatal("CopyFrom did not copy")
	}
}

func TestCopyFromLayoutMismatchPanics(t *testing.T) {
	p := newTestPool(t)
	a := NewVector(p, 10, 2)
	b := NewVector(p, 10, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("layout mismatch did not panic")
		}
	}()
	a.CopyFrom(b)
}

func TestSlice(t *testing.T) {
	p := newTestPool(t)
	v := NewVector(p, 33, 4)
	v.Map(func(i uint64, _ float64) float64 { return float64(i * i) })
	s := v.Slice()
	if len(s) != 33 {
		t.Fatalf("Slice len = %d", len(s))
	}
	for i, x := range s {
		if x != float64(i*i) {
			t.Fatalf("Slice[%d] = %v", i, x)
		}
	}
}

func TestVectorDeterminismAcrossPartitionCounts(t *testing.T) {
	// Different partition counts may round differently (that is allowed),
	// but the same layout must reproduce exactly; and all layouts must
	// agree to tight tolerance.
	p := newTestPool(t)
	ref := 0.0
	for trial, parts := range []int{1, 3, 16, 64} {
		v := NewVector(p, 4096, parts)
		v.Map(func(i uint64, _ float64) float64 { return math.Cos(float64(i)) })
		s := v.Sum()
		if trial == 0 {
			ref = s
			continue
		}
		if math.Abs(s-ref) > 1e-10*math.Max(1, math.Abs(ref)) {
			t.Fatalf("parts=%d: Sum=%v, ref=%v", parts, s, ref)
		}
	}
}
