package engine

import (
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

func TestPoolInstrument(t *testing.T) {
	reg := obs.NewRegistry()
	p := NewPool(4)
	defer p.Close()
	p.Instrument(reg)

	const n = 1000
	var sum atomic.Int64
	p.For(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum.Add(int64(i))
		}
	})
	if got := sum.Load(); got != n*(n-1)/2 {
		t.Fatalf("For under instrumentation computed %d", got)
	}

	snap := reg.Snapshot()
	var tasks, inline uint64
	var taskCount uint64
	var workers float64
	for _, c := range snap.Counters {
		switch c.Name {
		case "sbgt_engine_pool_tasks_total":
			tasks = c.Value
		case "sbgt_engine_pool_inline_total":
			inline = c.Value
		}
	}
	for _, g := range snap.Gauges {
		if g.Name == "sbgt_engine_pool_workers" {
			workers = g.Value
		}
	}
	for _, h := range snap.Histograms {
		if h.Name == "sbgt_engine_pool_task_seconds" {
			taskCount = h.Count
		}
	}
	if tasks == 0 {
		t.Error("no tasks counted")
	}
	if inline > tasks {
		t.Errorf("inline %d exceeds total tasks %d", inline, tasks)
	}
	if taskCount != tasks {
		t.Errorf("task_seconds count %d != tasks_total %d", taskCount, tasks)
	}
	if workers != 4 {
		t.Errorf("workers gauge = %v, want 4", workers)
	}

	// Post-close submissions run inline and keep counting.
	before := tasks + inline
	p.Close()
	p.Run(3, func(int) {})
	snap = reg.Snapshot()
	var after uint64
	for _, c := range snap.Counters {
		if c.Name == "sbgt_engine_pool_tasks_total" || c.Name == "sbgt_engine_pool_inline_total" {
			after += c.Value
		}
	}
	if after <= before {
		t.Errorf("post-close tasks not counted: before %d after %d", before, after)
	}
}

func TestPoolInstrumentNilRegistry(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	p.Instrument(nil)
	done := false
	p.Run(1, func(int) { done = true })
	if !done {
		t.Fatal("task did not run")
	}
}
