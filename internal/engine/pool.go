// Package engine is the data-parallel execution substrate that stands in
// for Spark in this reproduction.
//
// SBGT's contribution is a mapping of Bayesian group testing onto a
// partitioned data-parallel engine: the 2^N-entry lattice posterior becomes
// a partitioned vector; likelihood updates are maps; normalization,
// marginals, and the halving scan are reductions. This package provides
// exactly that substrate in-process:
//
//   - Pool: a persistent worker pool with dynamically scheduled chunked
//     parallel-for (atomic work claiming gives the load balancing Spark
//     gets from task scheduling),
//   - Vector: a partitioned []float64 with map/reduce kernels whose
//     reductions merge per-partition compensated partial sums in partition
//     order — results are bit-stable for a fixed partition layout no matter
//     how work interleaves,
//   - multi-output reductions (ReduceVec) for marginal vectors and
//     candidate-pool scans.
//
// The TCP-distributed analogue (driver/executors) lives in internal/cluster
// and reuses these partition kernels on each executor.
package engine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Pool is a fixed-size worker pool. The zero value is not usable; create
// pools with NewPool and release them with Close. A Pool is safe for
// concurrent use, but parallel operations must not be nested on the same
// Pool from inside a worker body (the submit path falls back to inline
// execution to stay deadlock-free, at the cost of parallelism).
type Pool struct {
	workers int
	tasks   chan func()
	lifecyc sync.WaitGroup

	// mu makes submit's closed-check-then-send atomic with respect to
	// Close's close(tasks): submitters hold it shared for the send, Close
	// holds it exclusively while marking closed. A plain atomic flag is not
	// enough — a Close between the load and the send would panic the
	// submitter with a send on a closed channel.
	mu     sync.RWMutex
	closed bool

	// metrics is nil until Instrument attaches a registry; the hot path
	// pays one atomic load and a branch when uninstrumented.
	metrics atomic.Pointer[poolMetrics]
}

// poolMetrics is the pool's reporting surface, registered by Instrument.
type poolMetrics struct {
	tasks      *obs.Counter   // every task executed (worker-run or inline)
	inline     *obs.Counter   // the subset run inline (closed pool, saturated workers, or the single-chunk fast path)
	inflight   *obs.Gauge     // tasks currently executing
	taskTime   *obs.Histogram // per-task wall time
	submitWait *obs.Histogram // submit-to-start queue latency
}

// wrap instruments one task: queue wait observed when the task starts,
// in-flight gauge held for the task body, wall time observed on return.
func (m *poolMetrics) wrap(fn func()) func() {
	wait := m.submitWait.Time()
	return func() {
		wait()
		m.inflight.Inc()
		stop := m.taskTime.Time()
		defer func() {
			stop()
			m.inflight.Dec()
			m.tasks.Inc()
		}()
		fn()
	}
}

// Instrument attaches the pool to a registry under the
// sbgt_engine_pool_* family: tasks/inline counters, an in-flight gauge, a
// live queue-depth gauge, and task-time and submit-wait histograms. A nil
// registry detaches nothing and costs nothing; calling Instrument again
// re-points the pool at the new registry.
func (p *Pool) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	m := &poolMetrics{
		tasks:      reg.Counter("sbgt_engine_pool_tasks_total"),
		inline:     reg.Counter("sbgt_engine_pool_inline_total"),
		inflight:   reg.Gauge("sbgt_engine_pool_inflight"),
		taskTime:   reg.Histogram("sbgt_engine_pool_task_seconds", nil),
		submitWait: reg.Histogram("sbgt_engine_pool_submit_wait_seconds", nil),
	}
	reg.Gauge("sbgt_engine_pool_workers").Set(float64(p.workers))
	reg.GaugeFunc("sbgt_engine_pool_queue_depth", func() float64 {
		return float64(len(p.tasks))
	})
	p.metrics.Store(m)
}

// NewPool returns a pool with the given number of workers; workers <= 0
// selects runtime.GOMAXPROCS(0). Workers are started eagerly so the first
// kernel does not pay spawn latency.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		workers: workers,
		tasks:   make(chan func(), workers),
	}
	p.lifecyc.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.lifecyc.Done()
			for fn := range p.tasks {
				fn()
			}
		}()
	}
	return p
}

// Workers reports the pool's parallel width.
func (p *Pool) Workers() int { return p.workers }

// Close shuts the workers down and waits for them to exit. Close is
// idempotent. Operations submitted after Close run inline on the caller.
func (p *Pool) Close() {
	p.mu.Lock()
	already := p.closed
	p.closed = true
	if !already {
		close(p.tasks)
	}
	p.mu.Unlock()
	if !already {
		p.lifecyc.Wait()
	}
}

// submit hands fn to a worker, or runs it inline when the pool is closed or
// every worker is saturated (which also makes accidental nesting safe
// instead of deadlocking).
func (p *Pool) submit(fn func()) {
	m := p.metrics.Load()
	if m != nil {
		fn = m.wrap(fn)
	}
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		if m != nil {
			m.inline.Inc()
		}
		fn()
		return
	}
	select {
	case p.tasks <- fn:
		p.mu.RUnlock()
	default:
		p.mu.RUnlock()
		if m != nil {
			m.inline.Inc()
		}
		fn()
	}
}

// panicBox captures the first panic raised by any worker so the parallel
// operation can re-raise it on the caller's goroutine instead of crashing
// the process from a worker or hanging the barrier.
type panicBox struct {
	once sync.Once
	val  any
}

func (b *panicBox) capture() {
	if r := recover(); r != nil {
		b.once.Do(func() { b.val = r })
	}
}

func (b *panicBox) rethrow() {
	if b.val != nil {
		panic(fmt.Sprintf("engine: worker panic: %v", b.val))
	}
}

// For runs fn over [0, n) split into contiguous chunks claimed dynamically
// by the pool's workers. grain is the chunk length; grain <= 0 picks a
// default of 8 chunks per worker, which balances scheduling overhead
// against load skew. For blocks until every index is processed. A panic in
// fn is re-raised on the caller's goroutine after all workers quiesce.
func (p *Pool) For(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = n / (p.workers * 8)
		if grain < 1 {
			grain = 1
		}
	}
	chunks := (n + grain - 1) / grain
	spawn := p.workers
	if chunks < spawn {
		spawn = chunks
	}
	if spawn == 1 {
		// Single chunk: skip the scheduling machinery entirely (but still
		// count the work as an inline task when instrumented).
		var box panicBox
		run := func() {
			defer box.capture()
			fn(0, n)
		}
		if m := p.metrics.Load(); m != nil {
			m.inline.Inc()
			run = m.wrap(run)
		}
		run()
		box.rethrow()
		return
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	var box panicBox
	body := func() {
		defer wg.Done()
		defer box.capture()
		for {
			hi := int(next.Add(int64(grain)))
			lo := hi - grain
			if lo >= n {
				return
			}
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
	}
	wg.Add(spawn)
	for w := 0; w < spawn; w++ {
		p.submit(body)
	}
	wg.Wait()
	box.rethrow()
}

// Run executes n independent jobs fn(0..n-1) on the pool, one claim per
// job. It is the fan-out primitive for Monte-Carlo replicates, where each
// job is heavyweight and dynamic claiming absorbs run-time skew.
func (p *Pool) Run(n int, fn func(job int)) {
	p.For(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}
