package engine

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestNewPoolDefaults(t *testing.T) {
	p := NewPool(0)
	defer p.Close()
	if got, want := p.Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("Workers = %d, want %d", got, want)
	}
}

func TestForCoversRangeExactlyOnce(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const n = 10000
	var hits [n]atomic.Int32
	p.For(n, 7, func(lo, hi int) {
		if lo < 0 || hi > n || lo >= hi {
			t.Errorf("bad chunk [%d,%d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			hits[i].Add(1)
		}
	})
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("index %d visited %d times", i, got)
		}
	}
}

func TestForZeroAndNegative(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	called := false
	p.For(0, 1, func(int, int) { called = true })
	p.For(-5, 1, func(int, int) { called = true })
	if called {
		t.Fatal("For called body for non-positive n")
	}
}

func TestForSingleChunkRunsInline(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	sum := 0 // unsynchronized on purpose: must be safe when spawn == 1
	p.For(10, 100, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum += i
		}
	})
	if sum != 45 {
		t.Fatalf("sum = %d, want 45", sum)
	}
}

func TestForDefaultGrain(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var count atomic.Int64
	p.For(1000, 0, func(lo, hi int) {
		count.Add(int64(hi - lo))
	})
	if count.Load() != 1000 {
		t.Fatalf("covered %d elements", count.Load())
	}
}

func TestForPanicPropagates(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Fatalf("unexpected panic payload %v", r)
		}
	}()
	p.For(100, 1, func(lo, _ int) {
		if lo == 50 {
			panic("boom")
		}
	})
}

func TestForPanicInSingleChunk(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("inline panic did not propagate")
		}
	}()
	p.For(1, 1, func(int, int) { panic("inline") })
}

func TestRunExecutesEachJobOnce(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	const n = 500
	var hits [n]atomic.Int32
	p.Run(n, func(j int) { hits[j].Add(1) })
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("job %d ran %d times", i, hits[i].Load())
		}
	}
}

func TestCloseIdempotentAndPostCloseInline(t *testing.T) {
	p := NewPool(2)
	p.Close()
	p.Close() // must not panic
	ran := false
	p.For(3, 1, func(lo, hi int) { ran = true })
	if !ran {
		t.Fatal("For after Close did not run")
	}
}

func TestConcurrentForCalls(t *testing.T) {
	// Two goroutines driving the same pool must both complete (saturation
	// falls back to inline execution rather than deadlocking).
	p := NewPool(2)
	defer p.Close()
	done := make(chan int64, 2)
	for g := 0; g < 2; g++ {
		go func() {
			var total atomic.Int64
			p.For(10000, 13, func(lo, hi int) {
				total.Add(int64(hi - lo))
			})
			done <- total.Load()
		}()
	}
	for g := 0; g < 2; g++ {
		if got := <-done; got != 10000 {
			t.Fatalf("concurrent For covered %d", got)
		}
	}
}

func TestLoadBalancingSkewedWork(t *testing.T) {
	// One chunk is 100x heavier; dynamic claiming should still let every
	// worker contribute. We check completion, not timing: each chunk is
	// claimed exactly once even under skew.
	p := NewPool(4)
	defer p.Close()
	var total atomic.Int64
	p.For(64, 1, func(lo, hi int) {
		work := 1
		if lo == 0 {
			work = 100
		}
		s := 0
		for i := 0; i < work*1000; i++ {
			s += i
		}
		_ = s
		total.Add(int64(hi - lo))
	})
	if total.Load() != 64 {
		t.Fatalf("covered %d chunks", total.Load())
	}
}
