package engine

import (
	"fmt"

	"repro/internal/prob"
)

// Vector is a dense float64 vector split into contiguous partitions, the
// engine's analogue of a cached Spark RDD of doubles. Partitions are the
// unit of scheduling: kernels run one partition body at a time on a worker,
// and reductions merge per-partition partials in ascending partition order
// so results do not depend on execution interleaving.
type Vector struct {
	pool    *Pool
	backing []float64 // one contiguous allocation; parts slice into it
	parts   [][]float64
	offsets []uint64 // global index of each partition's first element
	n       uint64
}

// NewVector allocates a zero-filled vector of n elements on pool, split
// into the given number of partitions (parts <= 0 selects 4 per worker,
// enough slack for dynamic balancing without drowning in scheduling).
// The backing store is one contiguous allocation, so partition boundaries
// cost nothing in locality.
func NewVector(pool *Pool, n uint64, parts int) *Vector {
	if pool == nil {
		panic("engine: NewVector with nil pool")
	}
	v := &Vector{
		pool:    pool,
		backing: make([]float64, n),
		n:       n,
	}
	v.partition(parts)
	return v
}

// partition re-slices the first n elements of the backing array into the
// given number of partitions (<= 0 selects 4 per worker), with sizes
// differing by at most one.
func (v *Vector) partition(parts int) {
	if parts <= 0 {
		parts = v.pool.Workers() * 4
	}
	if uint64(parts) > v.n && v.n > 0 {
		parts = int(v.n)
	}
	if v.n == 0 {
		parts = 0
	}
	v.parts = make([][]float64, parts)
	v.offsets = make([]uint64, parts)
	if parts == 0 {
		return
	}
	per := v.n / uint64(parts)
	rem := v.n % uint64(parts)
	var off uint64
	for i := 0; i < parts; i++ {
		size := per
		if uint64(i) < rem {
			size++
		}
		v.parts[i] = v.backing[off : off+size : off+size]
		v.offsets[i] = off
		off += size
	}
}

// Len returns the number of elements.
func (v *Vector) Len() uint64 { return v.n }

// Parts returns the number of partitions.
func (v *Vector) Parts() int { return len(v.parts) }

// Pool returns the pool the vector schedules on.
func (v *Vector) Pool() *Pool { return v.pool }

// At returns element i. It is intended for tests and debugging; kernels
// should use partition bodies. It panics when i is out of range.
func (v *Vector) At(i uint64) float64 {
	p, j := v.locate(i)
	return v.parts[p][j]
}

// Set writes element i. Like At, it is for tests and setup code.
func (v *Vector) Set(i uint64, x float64) {
	p, j := v.locate(i)
	v.parts[p][j] = x
}

func (v *Vector) locate(i uint64) (part int, idx uint64) {
	if i >= v.n {
		panic(fmt.Sprintf("engine: index %d out of range [0,%d)", i, v.n))
	}
	// Partition sizes differ by at most one, so a direct estimate lands on
	// or next to the right partition; fix up locally.
	p := int(i * uint64(len(v.parts)) / v.n)
	if p >= len(v.parts) {
		p = len(v.parts) - 1
	}
	for v.offsets[p] > i {
		p--
	}
	for p+1 < len(v.parts) && v.offsets[p+1] <= i {
		p++
	}
	return p, i - v.offsets[p]
}

// ForPartitions runs body once per partition in parallel. body receives the
// partition index, the global index of the partition's first element, and
// the partition's data slice, which it may mutate. This is the primitive
// the lattice layer builds its fused kernels on.
func (v *Vector) ForPartitions(body func(part int, offset uint64, data []float64)) {
	v.pool.For(len(v.parts), 1, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			body(p, v.offsets[p], v.parts[p])
		}
	})
}

// ReduceSum runs body once per partition in parallel; each invocation
// returns a compensated partial sum for its partition. Partials are merged
// in ascending partition order, giving a fixed-shape reduction tree:
// repeated runs produce bit-identical results regardless of scheduling.
func (v *Vector) ReduceSum(body func(part int, offset uint64, data []float64) prob.Accumulator) float64 {
	partials := make([]prob.Accumulator, len(v.parts))
	v.pool.For(len(v.parts), 1, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			partials[p] = body(p, v.offsets[p], v.parts[p])
		}
	})
	var total prob.Accumulator
	for _, acc := range partials {
		total.Merge(acc)
	}
	return total.Value()
}

// ReduceVec is the multi-output reduction: each partition fills a
// length-m partial vector (out is zeroed before body runs), and partials
// are merged component-wise in ascending partition order with compensated
// accumulators. It returns the merged vector. The marginal computation
// (m = number of subjects) and the halving candidate scan (m = number of
// candidate pools) are both single ReduceVec passes.
func (v *Vector) ReduceVec(m int, body func(part int, offset uint64, data []float64, out []float64)) []float64 {
	partials := make([][]float64, len(v.parts))
	v.pool.For(len(v.parts), 1, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			out := make([]float64, m)
			body(p, v.offsets[p], v.parts[p], out)
			partials[p] = out
		}
	})
	accs := make([]prob.Accumulator, m)
	for _, part := range partials {
		for j, x := range part {
			accs[j].Add(x)
		}
	}
	out := make([]float64, m)
	for j := range accs {
		out[j] = accs[j].Value()
	}
	return out
}

// minSubsetGE returns the smallest submask f of free with f >= x in
// integer order, and ok = false when free has no such submask. It is the
// entry-point computation for clamping a masked subset walk to a
// partition's [offset, offset+len) index range.
func minSubsetGE(free, x uint64) (f uint64, ok bool) {
	if x == 0 {
		return 0, true
	}
	var r uint64
	for b := 63; b >= 0; b-- {
		bit := uint64(1) << uint(b)
		if free&bit != 0 {
			// Match x's bit and stay tight: equal prefixes so far.
			if x&bit != 0 {
				r |= bit
			}
			continue
		}
		if x&bit == 0 {
			continue
		}
		// x demands a 1 at a position free cannot supply, so every submask
		// with the tight prefix is < x from here down. Bump the lowest free
		// bit above b still unset in r (its x-bit is 0, so the result
		// exceeds x) and clear everything below it for minimality.
		avail := free &^ r &^ (bit | (bit - 1))
		if avail == 0 {
			return 0, false
		}
		low := avail & (-avail)
		return (r | low) &^ (low - 1), true
	}
	// Tight all the way: x is itself a submask of free.
	return r, true
}

// ReduceSubset returns the deterministic compensated sum of the elements
// whose global index lies in the sub-lattice {base | f : f ⊆ free}. base
// and free must be disjoint and base|free must be a valid index. Each
// partition enumerates its slice of the sub-lattice in increasing index
// order with the masked subset iteration f' = (f − free) & free, clamped
// to the partition range via minSubsetGE, so the walk stays parallel
// across partitions and the result is bit-identical to a dense scan that
// skips non-members — at 2^popcount(free) loads instead of Len().
func (v *Vector) ReduceSubset(base, free uint64) float64 {
	if base&free != 0 {
		panic(fmt.Sprintf("engine: ReduceSubset masks overlap (base %x, free %x)", base, free))
	}
	if top := base | free; top >= v.n {
		panic(fmt.Sprintf("engine: ReduceSubset index %d out of range [0,%d)", top, v.n))
	}
	return v.ReduceSum(func(_ int, offset uint64, data []float64) prob.Accumulator {
		var acc prob.Accumulator
		hi := offset + uint64(len(data))
		if hi <= base {
			return acc
		}
		var xlo uint64
		if offset > base {
			xlo = offset - base
		}
		f, ok := minSubsetGE(free, xlo)
		for ok && base+f < hi {
			acc.Add(data[base+f-offset])
			if f == free {
				break
			}
			f = (f - free) & free
		}
		return acc
	})
}

// ShrinkGather shrinks the vector in place to n elements (n <= Len) and
// re-partitions it into parts partitions (<= 0 selects the engine
// default). body receives dst — the vector's first n elements after the
// call — and src, the full previous contents. The two alias the same
// backing array, so body must only assign dst[i] from src positions >= i
// (a forward monotone gather, like a bit-splice collapse); it runs
// single-threaded because the aliasing makes partition-parallel writes
// racy. This is the zero-allocation substrate of in-place conditioning.
func (v *Vector) ShrinkGather(n uint64, parts int, body func(dst, src []float64)) {
	if n > v.n {
		panic(fmt.Sprintf("engine: ShrinkGather to %d exceeds length %d", n, v.n))
	}
	body(v.backing[:n], v.backing[:v.n])
	v.n = n
	v.partition(parts)
}

// Fill sets every element to x, in parallel.
func (v *Vector) Fill(x float64) {
	v.ForPartitions(func(_ int, _ uint64, data []float64) {
		for i := range data {
			data[i] = x
		}
	})
}

// Map applies fn element-wise in place; fn receives the global index.
// Prefer a hand-fused ForPartitions body on hot paths — Map pays one
// indirect call per element and exists for setup code and tests.
func (v *Vector) Map(fn func(i uint64, x float64) float64) {
	v.ForPartitions(func(_ int, offset uint64, data []float64) {
		for j := range data {
			data[j] = fn(offset+uint64(j), data[j])
		}
	})
}

// Scale multiplies every element by c.
func (v *Vector) Scale(c float64) {
	v.ForPartitions(func(_ int, _ uint64, data []float64) {
		for i := range data {
			data[i] *= c
		}
	})
}

// Sum returns the deterministic compensated total of the vector.
func (v *Vector) Sum() float64 {
	return v.ReduceSum(func(_ int, _ uint64, data []float64) prob.Accumulator {
		var acc prob.Accumulator
		for _, x := range data {
			acc.Add(x)
		}
		return acc
	})
}

// Normalize scales the vector so it sums to 1 and returns the pre-scale
// total. Like prob.Normalize, a degenerate total (zero, NaN, ±Inf) leaves
// the data unchanged.
func (v *Vector) Normalize() float64 {
	total := v.Sum()
	if !(total > 0) || total > maxFinite {
		return total
	}
	v.Scale(1 / total)
	return total
}

const maxFinite = 1.7976931348623157e308

// Clone returns a deep copy sharing the pool and partition layout.
func (v *Vector) Clone() *Vector {
	out := NewVector(v.pool, v.n, len(v.parts))
	out.ForPartitions(func(p int, _ uint64, data []float64) {
		copy(data, v.parts[p])
	})
	return out
}

// CopyFrom overwrites v's contents with src's. Layouts must match exactly
// (same length and partition count) or CopyFrom panics.
func (v *Vector) CopyFrom(src *Vector) {
	if v.n != src.n || len(v.parts) != len(src.parts) {
		panic("engine: CopyFrom layout mismatch")
	}
	v.ForPartitions(func(p int, _ uint64, data []float64) {
		copy(data, src.parts[p])
	})
}

// Slice materializes the whole vector into one flat slice, for tests and
// for shipping small vectors across the cluster wire.
func (v *Vector) Slice() []float64 {
	out := make([]float64, v.n)
	v.ForPartitions(func(_ int, offset uint64, data []float64) {
		copy(out[offset:], data)
	})
	return out
}
