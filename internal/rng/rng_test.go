package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestSeedsProduceDistinctStreams(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d/100 times", same)
	}
}

func TestZeroSeedNotDegenerate(t *testing.T) {
	r := New(0)
	var zeros int
	for i := 0; i < 64; i++ {
		if r.Uint64() == 0 {
			zeros++
		}
	}
	if zeros > 1 {
		t.Fatalf("seed 0 produced %d zero outputs in 64 draws", zeros)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// Child continues even if parent advances; and replaying the parent
	// reproduces the same child.
	parent2 := New(7)
	child2 := parent2.Split()
	for i := 0; i < 100; i++ {
		if child.Uint64() != child2.Uint64() {
			t.Fatalf("split streams not reproducible at step %d", i)
		}
	}
}

func TestSplitNDistinct(t *testing.T) {
	kids := New(3).SplitN(8)
	if len(kids) != 8 {
		t.Fatalf("SplitN returned %d streams", len(kids))
	}
	firsts := map[uint64]int{}
	for i, k := range kids {
		v := k.Uint64()
		if j, dup := firsts[v]; dup {
			t.Fatalf("children %d and %d emitted identical first draw", i, j)
		}
		firsts[v] = i
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v outside [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(13)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(17)
	counts := make([]int, 7)
	const n = 70000
	for i := 0; i < n; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < n/7-1200 || c > n/7+1200 {
			t.Errorf("Intn(7): value %d appeared %d times, expected ~%d", v, c, n/7)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestBernoulliEdges(t *testing.T) {
	r := New(19)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(23)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate = %v", rate)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(29)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(31)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm invalid at value %d", v)
		}
		seen[v] = true
	}
}

func TestShuffleUniformish(t *testing.T) {
	// Position of element 0 after shuffling [0,1,2] should be ~uniform.
	r := New(37)
	counts := make([]int, 3)
	const n = 30000
	for i := 0; i < n; i++ {
		a := []int{0, 1, 2}
		r.Shuffle(3, func(x, y int) { a[x], a[y] = a[y], a[x] })
		for pos, v := range a {
			if v == 0 {
				counts[pos]++
			}
		}
	}
	for pos, c := range counts {
		if c < n/3-800 || c > n/3+800 {
			t.Errorf("element 0 at position %d in %d/%d shuffles", pos, c, n)
		}
	}
}

func TestGammaMoments(t *testing.T) {
	r := New(41)
	const n = 100000
	shape, scale := 3.0, 2.0
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Gamma(shape, scale)
		if v < 0 {
			t.Fatalf("Gamma deviate %v negative", v)
		}
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-shape*scale) > 0.1 {
		t.Errorf("Gamma mean = %v, want %v", mean, shape*scale)
	}
	if math.Abs(variance-shape*scale*scale) > 0.4 {
		t.Errorf("Gamma variance = %v, want %v", variance, shape*scale*scale)
	}
}

func TestGammaSmallShape(t *testing.T) {
	r := New(43)
	const n = 50000
	shape := 0.5
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Gamma(shape, 1)
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("Gamma(0.5,1) deviate %v invalid", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-shape) > 0.02 {
		t.Errorf("Gamma(0.5) mean = %v, want 0.5", mean)
	}
}

func TestBetaMomentsAndRange(t *testing.T) {
	r := New(47)
	const n = 100000
	a, b := 2.0, 5.0
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Beta(a, b)
		if v < 0 || v > 1 {
			t.Fatalf("Beta deviate %v outside [0,1]", v)
		}
		sum += v
	}
	want := a / (a + b)
	if mean := sum / n; math.Abs(mean-want) > 0.01 {
		t.Errorf("Beta mean = %v, want %v", mean, want)
	}
}

func TestBinomialMoments(t *testing.T) {
	r := New(53)
	const n = 50000
	sum := 0
	for i := 0; i < n; i++ {
		k := r.Binomial(20, 0.25)
		if k < 0 || k > 20 {
			t.Fatalf("Binomial(20,0.25) = %d", k)
		}
		sum += k
	}
	mean := float64(sum) / n
	if math.Abs(mean-5) > 0.1 {
		t.Errorf("Binomial mean = %v, want 5", mean)
	}
}

func TestPoissonMoments(t *testing.T) {
	r := New(59)
	for _, lambda := range []float64{0, 2.5, 50} {
		const n = 50000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Poisson(lambda)
		}
		mean := float64(sum) / n
		tol := 0.05 + lambda*0.02
		if math.Abs(mean-lambda) > tol {
			t.Errorf("Poisson(%v) mean = %v", lambda, mean)
		}
	}
}

func TestExpMoments(t *testing.T) {
	r := New(61)
	const n = 100000
	rate := 2.0
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(rate)
		if v < 0 {
			t.Fatalf("Exp deviate %v negative", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1/rate) > 0.01 {
		t.Errorf("Exp(2) mean = %v, want 0.5", mean)
	}
}

func TestDistPanics(t *testing.T) {
	r := New(1)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Gamma(0,1)", func() { r.Gamma(0, 1) })
	mustPanic("Gamma(1,0)", func() { r.Gamma(1, 0) })
	mustPanic("Binomial(-1,.5)", func() { r.Binomial(-1, 0.5) })
	mustPanic("Poisson(-1)", func() { r.Poisson(-1) })
	mustPanic("Exp(0)", func() { r.Exp(0) })
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.NormFloat64()
	}
	_ = sink
}
