// Package rng provides a deterministic, splittable pseudo-random number
// generator for parallel simulation.
//
// Monte-Carlo studies in this repository fan replicates out across workers.
// If those replicates shared one math/rand source, results would depend on
// goroutine scheduling; if they derived seeds ad hoc (seed+i), streams could
// correlate. This package implements xoshiro256** seeded through SplitMix64,
// the combination recommended by the xoshiro authors: Split derives an
// independent child stream from a parent deterministically, so a simulation
// is reproducible for a fixed root seed regardless of execution order.
package rng

import (
	"math"
	"math/bits"
)

// Source is a deterministic xoshiro256** stream.
type Source struct {
	s         [4]uint64
	spare     float64 // cached second deviate from NormFloat64
	haveSpare bool
}

// New returns a Source seeded by expanding seed through SplitMix64, which
// guarantees the xoshiro state is not all-zero and decorrelates nearby seeds.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm, src.s[i] = splitMix64(sm)
	}
	return &src
}

// splitMix64 advances a SplitMix64 state and returns the new state and output.
func splitMix64(state uint64) (next, out uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return state, z ^ (z >> 31)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Split derives a child stream whose future outputs are independent of the
// parent's. The child is seeded from the parent's next output via SplitMix64
// re-expansion, so parent and child do not share state.
func (r *Source) Split() *Source {
	return New(r.Uint64())
}

// SplitN derives n independent child streams. Children are deterministic
// functions of the parent state at the call, so callers can hand stream i to
// worker i and obtain schedule-independent results.
func (r *Source) SplitN(n int) []*Source {
	out := make([]*Source, n)
	for i := range out {
		out[i] = r.Split()
	}
	return out
}

// Float64 returns a uniform value in [0, 1) with 53 random bits.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Lemire's nearly-divisionless bounded rejection keeps the draw unbiased.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	bound := uint64(n)
	threshold := (-bound) % bound
	for {
		hi, lo := bits.Mul64(r.Uint64(), bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// Bool returns a fair coin flip.
func (r *Source) Bool() bool { return r.Uint64()&1 == 1 }

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal deviate via the Marsaglia polar
// method. Two deviates are generated per acceptance; the spare is cached.
func (r *Source) NormFloat64() float64 {
	if r.haveSpare {
		r.haveSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 { //lint:allow floats polar-method rejection: the exact origin has no defined angle
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.haveSpare = true
		return u * f
	}
}

// Perm returns a uniformly random permutation of [0, n) (Fisher–Yates).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher–Yates style.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
