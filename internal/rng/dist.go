package rng

import "math"

// Gamma returns a deviate from the Gamma(shape, scale) distribution using
// the Marsaglia–Tsang squeeze method, with the standard shape<1 boost.
// It panics when shape or scale is not positive.
func (r *Source) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("rng: Gamma requires positive shape and scale")
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) · U^{1/a}.
		u := r.Float64()
		for u == 0 { //lint:allow floats rejection of the exact zero the power transform cannot accept
			u = r.Float64()
		}
		return r.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return scale * d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return scale * d * v
		}
	}
}

// Beta returns a deviate from the Beta(a, b) distribution via the
// Gamma-ratio construction. Heterogeneous risk priors draw per-subject
// infection probabilities from Beta distributions.
func (r *Source) Beta(a, b float64) float64 {
	x := r.Gamma(a, 1)
	y := r.Gamma(b, 1)
	if x+y == 0 { //lint:allow floats exact-zero degenerate draw; any tolerance would bias the ratio
		return 0.5 // vanishingly unlikely; keep the result in-range
	}
	return x / (x + y)
}

// Binomial returns a Binomial(n, p) deviate. For the pool sizes used here
// (n <= 64) direct Bernoulli summation is fast and exact.
func (r *Source) Binomial(n int, p float64) int {
	if n < 0 {
		panic("rng: Binomial requires n >= 0")
	}
	k := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			k++
		}
	}
	return k
}

// Poisson returns a Poisson(lambda) deviate. Knuth multiplication for
// lambda < 30, normal approximation with rounding above (adequate for the
// epidemic arrival processes simulated here). It panics for negative lambda.
func (r *Source) Poisson(lambda float64) int {
	if lambda < 0 {
		panic("rng: Poisson requires lambda >= 0")
	}
	if lambda == 0 { //lint:allow floats exact degenerate endpoint: Poisson(0) is identically zero
		return 0
	}
	if lambda < 30 {
		limit := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= limit {
				return k
			}
			k++
		}
	}
	for {
		v := lambda + math.Sqrt(lambda)*r.NormFloat64()
		if v >= 0 {
			return int(v + 0.5)
		}
	}
}

// Exp returns an Exp(rate) deviate via inversion. It panics when rate <= 0.
func (r *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp requires positive rate")
	}
	u := r.Float64()
	for u == 0 { //lint:allow floats rejection of the exact zero whose log is -Inf
		u = r.Float64()
	}
	return -math.Log(u) / rate
}
