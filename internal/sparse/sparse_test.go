package sparse

import (
	"math"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/dilution"
	"repro/internal/engine"
	"repro/internal/lattice"
	"repro/internal/rng"
)

func uniform(n int, p float64) []float64 {
	rs := make([]float64, n)
	for i := range rs {
		rs[i] = p
	}
	return rs
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"empty cohort", Config{Response: dilution.Ideal{}}},
		{"too large", Config{Risks: make([]float64, 65), Response: dilution.Ideal{}}},
		{"nil response", Config{Risks: uniform(4, 0.1)}},
		{"bad eps", Config{Risks: uniform(4, 0.1), Response: dilution.Ideal{}, Eps: 1.5}},
		{"bad risk", Config{Risks: []float64{0.5, 0}, Response: dilution.Ideal{}}},
	}
	for _, c := range cases {
		if _, err := New(c.cfg); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestExactWhenEpsZero(t *testing.T) {
	// eps = 0 retains the whole lattice: must agree exactly with the
	// dense engine across an update sequence.
	pool := engine.NewPool(2)
	defer pool.Close()
	risks := []float64{0.05, 0.2, 0.1, 0.3, 0.15, 0.08, 0.25, 0.12}
	resp := dilution.Hyperbolic{MaxSens: 0.96, Spec: 0.99, D: 0.3}
	dense, err := lattice.New(pool, lattice.Config{Risks: risks, Response: resp})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := New(Config{Risks: risks, Response: resp, Eps: 0})
	if err != nil {
		t.Fatal(err)
	}
	if sp.Support() != 256 {
		t.Fatalf("eps=0 support = %d, want full 256", sp.Support())
	}
	r := rng.New(1)
	for round := 0; round < 6; round++ {
		pm := bitvec.Mask(r.Uint64() & 0xff)
		if pm == 0 {
			pm = bitvec.FromIndices(0)
		}
		y := dilution.Negative
		if r.Bool() {
			y = dilution.Positive
		}
		errD := dense.Update(pm, y)
		errS := sp.Update(pm, y)
		if (errD == nil) != (errS == nil) {
			t.Fatalf("round %d: error divergence %v vs %v", round, errD, errS)
		}
	}
	dm, sm := dense.Marginals(), sp.Marginals()
	for i := range dm {
		if math.Abs(dm[i]-sm[i]) > 1e-10 {
			t.Fatalf("marginal[%d]: dense %v sparse %v", i, dm[i], sm[i])
		}
	}
	if a, b := dense.Entropy(), sp.Entropy(); math.Abs(a-b) > 1e-8 {
		t.Fatalf("entropy %v vs %v", a, b)
	}
	probe := bitvec.FromIndices(1, 3, 5)
	if a, b := dense.NegMass(probe), sp.NegMass(probe); math.Abs(a-b) > 1e-10 {
		t.Fatalf("negmass %v vs %v", a, b)
	}
	if a, b := dense.ExpectedInfected(), sp.ExpectedInfected(); math.Abs(a-b) > 1e-10 {
		t.Fatalf("E[|S|] %v vs %v", a, b)
	}
	dMAP, _ := dense.MAP()
	sMAP, _ := sp.MAP()
	if dMAP != sMAP {
		t.Fatalf("MAP %v vs %v", dMAP, sMAP)
	}
	if sp.Pruned() > 1e-12 {
		t.Fatalf("eps=0 pruned %v", sp.Pruned())
	}
}

func TestPrunedBoundsMarginalError(t *testing.T) {
	// Coarse truncation: marginal error must stay within the reported
	// pruned-mass bound (generous multiple for renormalization effects).
	pool := engine.NewPool(2)
	defer pool.Close()
	risks := uniform(10, 0.06)
	resp := dilution.Binary{Sens: 0.93, Spec: 0.98}
	dense, err := lattice.New(pool, lattice.Config{Risks: risks, Response: resp})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := New(Config{Risks: risks, Response: resp, Eps: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if sp.Support() >= 1024 {
		t.Fatalf("coarse eps retained the whole lattice (%d states)", sp.Support())
	}
	seq := []struct {
		pm bitvec.Mask
		y  dilution.Outcome
	}{
		{bitvec.FromIndices(0, 1, 2, 3, 4), dilution.Positive},
		{bitvec.FromIndices(0, 1), dilution.Negative},
		{bitvec.FromIndices(5, 6, 7), dilution.Negative},
	}
	for _, s := range seq {
		if err := dense.Update(s.pm, s.y); err != nil {
			t.Fatal(err)
		}
		if err := sp.Update(s.pm, s.y); err != nil {
			t.Fatal(err)
		}
	}
	bound := sp.Pruned()
	if bound <= 0 {
		t.Fatal("no pruning recorded at coarse eps")
	}
	dm, sm := dense.Marginals(), sp.Marginals()
	for i := range dm {
		if diff := math.Abs(dm[i] - sm[i]); diff > 10*bound+1e-12 {
			t.Fatalf("marginal[%d] error %v exceeds bound %v", i, diff, bound)
		}
	}
}

func TestLargeCohortBeyondDenseLimit(t *testing.T) {
	// 48 subjects at 1% prevalence: impossible densely (2^48 states),
	// trivial sparsely.
	risks := uniform(48, 0.01)
	sp, err := New(Config{Risks: risks, Response: dilution.Ideal{}, Eps: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if sp.Support() > 1<<21 {
		t.Fatalf("support unexpectedly large: %d", sp.Support())
	}
	marg := sp.Marginals()
	for i, g := range marg {
		if math.Abs(g-0.01) > 1e-6 {
			t.Fatalf("prior marginal[%d] = %v", i, g)
		}
	}
	// A negative pool over half the cohort zeroes those marginals.
	half := bitvec.Full(24)
	if err := sp.Update(half, dilution.Negative); err != nil {
		t.Fatal(err)
	}
	marg = sp.Marginals()
	for i := 0; i < 24; i++ {
		if marg[i] != 0 {
			t.Fatalf("marginal[%d] = %v after ideal negative", i, marg[i])
		}
	}
	for i := 24; i < 48; i++ {
		if math.Abs(marg[i]-0.01) > 1e-6 {
			t.Fatalf("untested marginal[%d] = %v", i, marg[i])
		}
	}
	// Support shrank (states intersecting the pool died).
	if sp.Support() > 1<<20 {
		t.Fatalf("support after collapse: %d", sp.Support())
	}
}

func TestExtremePriors64Subjects(t *testing.T) {
	// 64 subjects at 0.01% risk: masses of multi-positive states are
	// astronomically small, but peak-relative pruning keeps everything
	// retained within eps of the maximum, so no quantity underflows to
	// garbage.
	risks := uniform(64, 1e-4)
	sp, err := New(Config{Risks: risks, Response: dilution.Ideal{}, Eps: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	marg := sp.Marginals()
	for i, g := range marg {
		if math.Abs(g-1e-4) > 1e-8 {
			t.Fatalf("prior marginal[%d] = %v", i, g)
		}
	}
	if h := sp.Entropy(); h <= 0 || math.IsNaN(h) {
		t.Fatalf("entropy = %v", h)
	}
	// A positive on a huge pool still renormalizes cleanly.
	if err := sp.Update(bitvec.Full(64), dilution.Positive); err != nil {
		t.Fatal(err)
	}
	marg = sp.Marginals()
	var sum float64
	for _, g := range marg {
		if g < 0 || g > 1 || math.IsNaN(g) {
			t.Fatalf("posterior marginal %v invalid", g)
		}
		sum += g
	}
	// Exactly one infected in expectation (ideal positive on everyone,
	// tiny priors make multi-positive states negligible).
	if math.Abs(sum-1) > 0.01 {
		t.Fatalf("E[|S|] = %v, want ≈ 1", sum)
	}
}

func TestMaxStatesEnforced(t *testing.T) {
	risks := uniform(20, 0.4) // diffuse prior: huge support
	_, err := New(Config{Risks: risks, Response: dilution.Ideal{}, Eps: 0, MaxStates: 1000})
	if err == nil {
		t.Fatal("MaxStates overflow accepted")
	}
}

func TestUpdateErrors(t *testing.T) {
	sp, err := New(Config{Risks: uniform(6, 0.1), Response: dilution.Ideal{}, Eps: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Update(0, dilution.Positive); err == nil {
		t.Error("empty pool accepted")
	}
	if err := sp.Update(bitvec.FromIndices(7), dilution.Positive); err == nil {
		t.Error("out-of-cohort pool accepted")
	}
	pm := bitvec.Full(6)
	if err := sp.Update(pm, dilution.Negative); err != nil {
		t.Fatal(err)
	}
	if err := sp.Update(pm, dilution.Positive); err == nil {
		t.Error("impossible outcome accepted")
	}
	if sp.Tests() != 1 {
		t.Errorf("Tests = %d", sp.Tests())
	}
}

func TestStateMassLookup(t *testing.T) {
	sp, err := New(Config{Risks: []float64{0.3, 0.4}, Response: dilution.Ideal{}, Eps: 0})
	if err != nil {
		t.Fatal(err)
	}
	want := map[bitvec.Mask]float64{
		0: 0.7 * 0.6, 1: 0.3 * 0.6, 2: 0.7 * 0.4, 3: 0.3 * 0.4,
	}
	for s, w := range want {
		if got := sp.StateMass(s); math.Abs(got-w) > 1e-12 {
			t.Errorf("StateMass(%v) = %v, want %v", s, got, w)
		}
	}
}

func TestNegMassesMatchesSingles(t *testing.T) {
	sp, err := New(Config{Risks: uniform(8, 0.1), Response: dilution.Ideal{}, Eps: 0})
	if err != nil {
		t.Fatal(err)
	}
	cands := []bitvec.Mask{bitvec.FromIndices(0), bitvec.FromIndices(1, 2), bitvec.Full(8)}
	batch := sp.NegMasses(cands)
	for i, c := range cands {
		if single := sp.NegMass(c); math.Abs(batch[i]-single) > 1e-15 {
			t.Errorf("candidate %v: %v vs %v", c, batch[i], single)
		}
	}
}

func TestAccessors(t *testing.T) {
	resp := dilution.Binary{Sens: 0.9, Spec: 0.98}
	sp, err := New(Config{Risks: uniform(5, 0.1), Response: resp, Eps: 0})
	if err != nil {
		t.Fatal(err)
	}
	if sp.N() != 5 {
		t.Errorf("N = %d", sp.N())
	}
	if sp.Response().Name() != resp.Name() {
		t.Errorf("Response = %s", sp.Response().Name())
	}
}

func TestSparsePrefixNegMassesMatchesScan(t *testing.T) {
	sp, err := New(Config{Risks: []float64{0.05, 0.2, 0.1, 0.3, 0.15, 0.08}, Response: dilution.Binary{Sens: 0.93, Spec: 0.99}, Eps: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Update(bitvec.FromIndices(0, 1, 2), dilution.Positive); err != nil {
		t.Fatal(err)
	}
	order := []int{3, 1, 5, 0}
	fast := sp.PrefixNegMasses(order)
	var prefix bitvec.Mask
	cands := make([]bitvec.Mask, 0, len(order))
	for _, s := range order {
		prefix = prefix.With(s)
		cands = append(cands, prefix)
	}
	slow := sp.NegMasses(cands)
	for i := range cands {
		if math.Abs(fast[i]-slow[i]) > 1e-12 {
			t.Fatalf("prefix %d: %v vs %v", i, fast[i], slow[i])
		}
	}
	if got := sp.PrefixNegMasses(nil); got != nil {
		t.Errorf("empty order returned %v", got)
	}
	for name, bad := range map[string][]int{"dup": {1, 1}, "range": {9}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s order did not panic", name)
				}
			}()
			sp.PrefixNegMasses(bad)
		}()
	}
}

func TestSparseCredibleSet(t *testing.T) {
	sp, err := New(Config{Risks: []float64{0.4, 0.2}, Response: dilution.Ideal{}, Eps: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Masses: {}: .48, {0}: .32, {1}: .12, {0,1}: .08.
	set, mass := sp.CredibleSet(0.5)
	if len(set) != 2 || set[0] != 0 || set[1] != bitvec.FromIndices(0) {
		t.Fatalf("50%% set = %v", set)
	}
	if math.Abs(mass-0.8) > 1e-12 {
		t.Fatalf("covered %v", mass)
	}
	if set, _ := sp.CredibleSet(1); len(set) != 4 {
		t.Fatalf("100%% set = %v", set)
	}
	defer func() {
		if recover() == nil {
			t.Error("bad level did not panic")
		}
	}()
	sp.CredibleSet(0)
}

func TestSupportGrowsWithEps(t *testing.T) {
	risks := uniform(16, 0.05)
	var prev int
	for _, eps := range []float64{1e-2, 1e-4, 1e-8, 0} {
		sp, err := New(Config{Risks: risks, Response: dilution.Ideal{}, Eps: eps})
		if err != nil {
			t.Fatal(err)
		}
		if sp.Support() < prev {
			t.Fatalf("support shrank as eps tightened: %d -> %d at eps=%g", prev, sp.Support(), eps)
		}
		prev = sp.Support()
	}
	if prev != 1<<16 {
		t.Fatalf("eps=0 support = %d, want 65536", prev)
	}
}
