// Package sparse implements a pruned Bayesian lattice model.
//
// The dense engine (internal/lattice) stores all 2^N state masses, which
// caps one cohort at N = 30. But surveillance posteriors are concentrated:
// at low prevalence, virtually all mass sits on states with a handful of
// positives. This package keeps only states whose mass exceeds a
// truncation threshold, tracking the discarded mass explicitly so every
// answer carries an error bound — the classic state-space-reduction
// counterpart to SBGT's brute-force scaling, and the path to cohorts of
// 40–64 subjects on one machine.
//
// Guarantees: after every operation, Pruned() bounds the total variation
// between the truncated posterior and the exact one *for the same
// observation sequence*, because pruning only ever discards mass
// (renormalization spreads the discard proportionally). Tests
// cross-validate against the dense engine at eps=0 (exact agreement) and
// verify the bound at coarse eps.
package sparse

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"repro/internal/bitvec"
	"repro/internal/dilution"
	"repro/internal/prob"
)

// MaxSubjects bounds the cohort size of one sparse model: a state mask
// must fit one machine word. (The dense lattice's own bound is
// lattice.MaxSubjects; the cluster driver's is cluster.MaxSubjects.)
const MaxSubjects = 64

// Model is a truncated lattice posterior. Not safe for concurrent use.
type Model struct {
	n      int
	risks  []float64
	resp   dilution.Response
	states []uint64  // retained state masks, ascending
	mass   []float64 // aligned with states; sums to 1
	eps    float64   // relative truncation threshold
	pruned float64   // cumulative discarded mass (pre-renormalization units)
	tests  int
}

// Config configures a sparse model.
type Config struct {
	// Risks holds per-subject prior risks, each in (0,1). Up to 64
	// subjects (a state must fit one machine word).
	Risks []float64
	// Response models the assay. Required.
	Response dilution.Response
	// Eps is the relative truncation threshold: states with mass below
	// Eps times the current maximum state mass are discarded. 0 keeps
	// everything ever enumerated; typical values are 1e-12..1e-8.
	Eps float64
	// MaxStates caps the retained support. New returns an error when the
	// prior support at Eps exceeds it — the signal to raise Eps. 0 means
	// 1 << 22 (≈ 4M states, 64 MB).
	MaxStates int
}

// New enumerates the prior support above the truncation threshold by
// depth-first search with a mass upper bound: extending a partial
// assignment can grow its mass by at most the product of max(1, odds) of
// the unassigned subjects, so subtrees that cannot reach the threshold
// are skipped without being walked. At low prevalence this touches a
// vanishing fraction of the 2^N lattice.
func New(cfg Config) (*Model, error) {
	n := len(cfg.Risks)
	if n == 0 {
		return nil, fmt.Errorf("sparse: empty cohort")
	}
	if n > MaxSubjects {
		return nil, fmt.Errorf("sparse: cohort size %d exceeds max %d", n, MaxSubjects)
	}
	if cfg.Response == nil {
		return nil, fmt.Errorf("sparse: nil response model")
	}
	if cfg.Eps < 0 || cfg.Eps >= 1 {
		return nil, fmt.Errorf("sparse: eps %v outside [0,1)", cfg.Eps)
	}
	maxStates := cfg.MaxStates
	if maxStates <= 0 {
		maxStates = 1 << 22
	}
	for i, p := range cfg.Risks {
		if !(p > 0 && p < 1) {
			return nil, fmt.Errorf("sparse: risk[%d] = %v outside (0,1)", i, p)
		}
	}

	// A partial assignment over subjects 0..i-1 with running mass w can be
	// completed to a full state of mass at most w·suffixMax[i], where
	// suffixMax[i] = Π_{j >= i} max(p_j, 1-p_j). Subtrees whose bound
	// falls below the threshold are skipped unwalked.
	suffixMax := make([]float64, n+1)
	suffixMax[n] = 1
	for i := n - 1; i >= 0; i-- {
		f := cfg.Risks[i]
		if 1-f > f {
			f = 1 - f
		}
		suffixMax[i] = suffixMax[i+1] * f
	}
	// The threshold is relative to the largest achievable state mass,
	// which is exactly suffixMax[0].
	thresh := cfg.Eps * suffixMax[0]

	m := &Model{
		n:     n,
		risks: append([]float64(nil), cfg.Risks...),
		resp:  cfg.Response,
		eps:   cfg.Eps,
	}
	// Iterative DFS over (next subject, state-so-far, exact mass-so-far).
	type frame struct {
		i int
		s uint64
		w float64
	}
	stack := []frame{{0, 0, 1}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.w*suffixMax[f.i] < thresh {
			continue // no completion can reach the threshold
		}
		if f.i == n {
			if len(m.states) >= maxStates {
				return nil, fmt.Errorf("sparse: prior support exceeds MaxStates=%d at eps=%g; raise Eps", maxStates, cfg.Eps)
			}
			m.states = append(m.states, f.s)
			m.mass = append(m.mass, f.w)
			continue
		}
		stack = append(stack,
			frame{f.i + 1, f.s, f.w * (1 - cfg.Risks[f.i])},
			frame{f.i + 1, f.s | 1<<uint(f.i), f.w * cfg.Risks[f.i]},
		)
	}
	if len(m.states) == 0 {
		return nil, fmt.Errorf("sparse: empty support at eps=%g", cfg.Eps)
	}
	sort.Sort(byState{m.states, m.mass})
	total := prob.Sum(m.mass)
	m.pruned = 1 - total // the prior sums to 1 analytically
	if m.pruned < 0 {
		m.pruned = 0
	}
	inv := 1 / total
	for i := range m.mass {
		m.mass[i] *= inv
	}
	return m, nil
}

// byState sorts the aligned (states, mass) arrays by state mask.
type byState struct {
	s []uint64
	w []float64
}

func (b byState) Len() int           { return len(b.s) }
func (b byState) Less(i, j int) bool { return b.s[i] < b.s[j] }
func (b byState) Swap(i, j int) {
	b.s[i], b.s[j] = b.s[j], b.s[i]
	b.w[i], b.w[j] = b.w[j], b.w[i]
}

// N returns the cohort size.
func (m *Model) N() int { return m.n }

// Support returns the number of retained states.
func (m *Model) Support() int { return len(m.states) }

// Pruned returns the cumulative discarded mass: an upper bound on the
// total-variation error of every probability this model reports, relative
// to exact inference on the same observations.
func (m *Model) Pruned() float64 { return m.pruned }

// Tests returns how many outcomes have been absorbed.
func (m *Model) Tests() int { return m.tests }

// Response returns the assay model.
func (m *Model) Response() dilution.Response { return m.resp }

// Risks returns the prior risk vector (a copy).
func (m *Model) Risks() []float64 { return append([]float64(nil), m.risks...) }

// Eps returns the relative truncation threshold.
func (m *Model) Eps() float64 { return m.eps }

// SupportStates returns the retained state masks in ascending order (a
// copy) — with SupportMass, the checkpointing counterpart of Restore.
func (m *Model) SupportStates() []uint64 { return append([]uint64(nil), m.states...) }

// SupportMass returns the retained state masses aligned with
// SupportStates (a copy).
func (m *Model) SupportMass() []float64 { return append([]float64(nil), m.mass...) }

// StateMass returns the retained mass of state s (0 if pruned).
func (m *Model) StateMass(s bitvec.Mask) float64 {
	i := sort.Search(len(m.states), func(i int) bool { return m.states[i] >= uint64(s) })
	if i < len(m.states) && m.states[i] == uint64(s) {
		return m.mass[i]
	}
	return 0
}

// Update folds one pooled-test outcome into the posterior, then prunes
// states that fell below the relative threshold and renormalizes.
func (m *Model) Update(pool bitvec.Mask, y dilution.Outcome) error {
	if pool == 0 {
		return fmt.Errorf("sparse: empty pool")
	}
	if m.n < 64 && !pool.SubsetOf(bitvec.Full(m.n)) {
		return fmt.Errorf("sparse: pool %v outside cohort of %d", pool, m.n)
	}
	size := pool.Count()
	lik := make([]float64, size+1)
	for k := 0; k <= size; k++ {
		l := m.resp.Likelihood(y, k, size)
		if l < 0 || math.IsNaN(l) {
			return fmt.Errorf("sparse: invalid likelihood %v at k=%d", l, k)
		}
		lik[k] = l
	}
	pm := uint64(pool)
	maxMass := 0.0
	var acc prob.Accumulator
	for i, s := range m.states {
		w := m.mass[i] * lik[bits.OnesCount64(s&pm)]
		m.mass[i] = w
		acc.Add(w)
		if w > maxMass {
			maxMass = w
		}
	}
	total := acc.Value()
	if !(total > 0) || math.IsInf(total, 0) {
		return fmt.Errorf("sparse: outcome %v on pool %v has zero total likelihood", y, pool)
	}
	m.prune(maxMass, total)
	m.tests++
	return nil
}

// prune drops states below eps·maxMass and renormalizes, accounting the
// discarded fraction into the cumulative bound.
func (m *Model) prune(maxMass, total float64) {
	thresh := m.eps * maxMass
	keepStates := m.states[:0]
	keepMass := m.mass[:0]
	var dropped prob.Accumulator
	for i, w := range m.mass {
		if w >= thresh && w > 0 {
			keepStates = append(keepStates, m.states[i])
			keepMass = append(keepMass, w)
		} else {
			dropped.Add(w)
		}
	}
	m.states = keepStates
	m.mass = keepMass
	m.pruned += dropped.Value() / total
	kept := total - dropped.Value()
	inv := 1 / kept
	for i := range m.mass {
		m.mass[i] *= inv
	}
}

// Marginals returns each subject's posterior infection probability.
func (m *Model) Marginals() []float64 {
	out := make([]float64, m.n)
	for i, s := range m.states {
		w := m.mass[i]
		for v := s; v != 0; v &= v - 1 {
			out[bits.TrailingZeros64(v)] += w
		}
	}
	return out
}

// NegMass returns P(S ∩ pool = ∅ | data) over the retained support.
func (m *Model) NegMass(pool bitvec.Mask) float64 {
	pm := uint64(pool)
	var acc prob.Accumulator
	for i, s := range m.states {
		if s&pm == 0 {
			acc.Add(m.mass[i])
		}
	}
	return acc.Value()
}

// PrefixNegMasses returns the clean masses of every nested prefix of the
// given subject ordering in one pass over the support — the same
// histogram-by-minimum-rank trick as lattice.PrefixNegMasses, so the
// halving selector runs unchanged on truncated posteriors.
func (m *Model) PrefixNegMasses(order []int) []float64 {
	k := len(order)
	if k == 0 {
		return nil
	}
	var rank [64]uint8
	for i := range rank {
		rank[i] = uint8(k)
	}
	for r, subj := range order {
		if subj < 0 || subj >= m.n {
			panic(fmt.Sprintf("sparse: order subject %d outside cohort of %d", subj, m.n))
		}
		if rank[subj] != uint8(k) {
			panic(fmt.Sprintf("sparse: duplicate subject %d in order", subj))
		}
		rank[subj] = uint8(r)
	}
	hist := make([]float64, k+1)
	for i, s := range m.states {
		rmin := uint8(k)
		for v := s; v != 0; v &= v - 1 {
			if r := rank[bits.TrailingZeros64(v)]; r < rmin {
				rmin = r
			}
		}
		hist[rmin] += m.mass[i]
	}
	neg := make([]float64, k)
	var acc prob.Accumulator
	for i := k - 1; i >= 0; i-- {
		acc.Add(hist[i+1])
		neg[i] = acc.Value()
	}
	return neg
}

// NegMasses scores every candidate pool in one pass over the support.
func (m *Model) NegMasses(cands []bitvec.Mask) []float64 {
	out := make([]float64, len(cands))
	for c, cand := range cands {
		out[c] = m.NegMass(cand)
	}
	return out
}

// Entropy returns the posterior entropy in bits over the retained support.
func (m *Model) Entropy() float64 {
	var acc prob.Accumulator
	for _, p := range m.mass {
		if p > 0 {
			acc.Add(-p * math.Log(p))
		}
	}
	return acc.Value() / math.Ln2
}

// MAP returns the maximum-a-posteriori retained state and its mass.
func (m *Model) MAP() (bitvec.Mask, float64) {
	best, bestMass := uint64(0), math.Inf(-1)
	for i, s := range m.states {
		if m.mass[i] > bestMass {
			best, bestMass = s, m.mass[i]
		}
	}
	return bitvec.Mask(best), bestMass
}

// Summary is the fused one-pass digest over the retained support; fields
// match the corresponding single-statistic kernels exactly.
type Summary struct {
	Marginals        []float64
	EntropyBits      float64
	MAPState         bitvec.Mask
	MAPMass          float64
	ExpectedInfected float64
	Mass             float64
}

// Summary computes marginals, entropy, MAP, expected-infected, and total
// mass together in a single pass over the retained support. Each
// statistic uses the same accumulation order as its standalone kernel
// (stored state order, first-strictly-greater argmax), so results are
// bit-identical to calling the five kernels separately.
func (m *Model) Summary() *Summary {
	out := &Summary{Marginals: make([]float64, m.n), MAPMass: math.Inf(-1)}
	var ent, exp, mass prob.Accumulator
	for i, s := range m.states {
		w := m.mass[i]
		mass.Add(w)
		if w > out.MAPMass {
			out.MAPState, out.MAPMass = bitvec.Mask(s), w
		}
		if w > 0 {
			ent.Add(-w * math.Log(w))
		}
		exp.Add(w * float64(bits.OnesCount64(s)))
		for v := s; v != 0; v &= v - 1 {
			out.Marginals[bits.TrailingZeros64(v)] += w
		}
	}
	out.EntropyBits = ent.Value() / math.Ln2
	out.ExpectedInfected = exp.Value()
	out.Mass = mass.Value()
	return out
}

// CredibleSet returns the smallest set of retained states whose mass
// reaches level (descending mass, ties by state index) and the mass
// covered. The truncated tail adds at most Pruned() of unaccounted mass.
// It panics when level is outside (0, 1].
func (m *Model) CredibleSet(level float64) ([]bitvec.Mask, float64) {
	if !(level > 0 && level <= 1) {
		panic(fmt.Sprintf("sparse: credible level %v outside (0,1]", level))
	}
	idx := make([]int, len(m.states))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if m.mass[idx[a]] != m.mass[idx[b]] { //lint:allow floats exact inequality is a deterministic sort tie-break, not a numeric test
			return m.mass[idx[a]] > m.mass[idx[b]]
		}
		return m.states[idx[a]] < m.states[idx[b]]
	})
	var out []bitvec.Mask
	var acc prob.Accumulator
	for _, i := range idx {
		if m.mass[i] <= 0 {
			break
		}
		out = append(out, bitvec.Mask(m.states[i]))
		acc.Add(m.mass[i])
		if acc.Value() >= level {
			break
		}
	}
	return out, acc.Value()
}

// Condition collapses subject onto a known status and returns the reduced
// model over the remaining N−1 subjects, mirroring lattice.Condition on
// the retained support: states disagreeing with the conditioning event are
// dropped, the subject's bit is spliced out, and the survivors are
// renormalized. The receiver is unchanged. It returns nil when the event
// has zero retained mass, the subject index is invalid, or only one
// subject remains (conditioning would empty the support). The cumulative
// Pruned() bound carries over: truncation errors made before conditioning
// still bound the conditional posterior for the same observations.
func (m *Model) Condition(subject int, positive bool) *Model {
	if subject < 0 || subject >= m.n || m.n <= 1 {
		return nil
	}
	bit := uint64(1) << uint(subject)
	low := bit - 1
	out := &Model{
		n:      m.n - 1,
		risks:  make([]float64, 0, m.n-1),
		resp:   m.resp,
		eps:    m.eps,
		pruned: m.pruned,
		tests:  m.tests,
	}
	out.risks = append(out.risks, m.risks[:subject]...)
	out.risks = append(out.risks, m.risks[subject+1:]...)
	var acc prob.Accumulator
	for i, s := range m.states {
		if (s&bit != 0) != positive {
			continue
		}
		// Splice the conditioned bit out; the map is monotone on the
		// surviving states, so the output stays sorted by state mask.
		out.states = append(out.states, (s&low)|((s&^low&^bit)>>1))
		out.mass = append(out.mass, m.mass[i])
		acc.Add(m.mass[i])
	}
	total := acc.Value()
	if !(total > 0) {
		return nil
	}
	inv := 1 / total
	for i := range out.mass {
		out.mass[i] *= inv
	}
	return out
}

// Restore rebuilds a model from a previously captured support — the
// checkpointing hook for sparse-backed sessions. states must be strictly
// ascending masks within the cohort; mass is renormalized on load, and the
// cumulative pruned bound and test counter are taken from the checkpoint.
func Restore(cfg Config, states []uint64, mass []float64, pruned float64, tests int) (*Model, error) {
	n := len(cfg.Risks)
	if n == 0 || n > MaxSubjects {
		return nil, fmt.Errorf("sparse: cohort size %d invalid", n)
	}
	if cfg.Response == nil {
		return nil, fmt.Errorf("sparse: nil response model")
	}
	if cfg.Eps < 0 || cfg.Eps >= 1 {
		return nil, fmt.Errorf("sparse: eps %v outside [0,1)", cfg.Eps)
	}
	for i, p := range cfg.Risks {
		if !(p > 0 && p < 1) {
			return nil, fmt.Errorf("sparse: risk[%d] = %v outside (0,1)", i, p)
		}
	}
	if len(states) == 0 || len(states) != len(mass) {
		return nil, fmt.Errorf("sparse: support has %d states but %d masses", len(states), len(mass))
	}
	if !(pruned >= 0 && pruned <= 1) {
		return nil, fmt.Errorf("sparse: pruned bound %v outside [0,1]", pruned)
	}
	if tests < 0 {
		return nil, fmt.Errorf("sparse: negative test count %d", tests)
	}
	full := ^uint64(0)
	if n < 64 {
		full = uint64(1)<<uint(n) - 1
	}
	var acc prob.Accumulator
	for i, s := range states {
		if s&^full != 0 {
			return nil, fmt.Errorf("sparse: state %#x outside cohort of %d", s, n)
		}
		if i > 0 && states[i-1] >= s {
			return nil, fmt.Errorf("sparse: states not strictly ascending at %d", i)
		}
		w := mass[i]
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("sparse: invalid mass %v", w)
		}
		acc.Add(w)
	}
	total := acc.Value()
	if !(total > 0) {
		return nil, fmt.Errorf("sparse: restored support has zero mass")
	}
	m := &Model{
		n:      n,
		risks:  append([]float64(nil), cfg.Risks...),
		resp:   cfg.Response,
		states: append([]uint64(nil), states...),
		mass:   append([]float64(nil), mass...),
		eps:    cfg.Eps,
		pruned: pruned,
		tests:  tests,
	}
	inv := 1 / total
	for i := range m.mass {
		m.mass[i] *= inv
	}
	return m, nil
}

// ExpectedInfected returns E[|S|] over the retained support.
func (m *Model) ExpectedInfected() float64 {
	var acc prob.Accumulator
	for i, s := range m.states {
		acc.Add(m.mass[i] * float64(bits.OnesCount64(s)))
	}
	return acc.Value()
}
