package sparse

import (
	"testing"

	"repro/internal/bitvec"
	"repro/internal/dilution"
)

// The uninformative ½-likelihood response keeps the posterior (and the
// retained support) a fixed point across thousands of benchmark updates;
// an informative one would concentrate mass, shrink the support, and
// measure a vanishing workload.
func benchSparse(b *testing.B, n int, prev, eps float64) *Model {
	b.Helper()
	m, err := New(Config{Risks: uniform(n, prev), Response: dilution.Binary{Sens: 0.5, Spec: 0.5}, Eps: eps})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func BenchmarkSparseUpdate40(b *testing.B) {
	m := benchSparse(b, 40, 0.02, 1e-10)
	pm := bitvec.Full(16)
	ys := []dilution.Outcome{dilution.Negative, dilution.Positive}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Update(pm, ys[i%2]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSparseMarginals40(b *testing.B) {
	m := benchSparse(b, 40, 0.02, 1e-10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Marginals()
	}
}

func BenchmarkSparsePrior48(b *testing.B) {
	// Prior enumeration cost: branch-and-bound over 2^48 states.
	for i := 0; i < b.N; i++ {
		m := benchSparse(b, 48, 0.01, 1e-9)
		_ = m.Support()
	}
}
