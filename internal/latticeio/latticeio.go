// Package latticeio checkpoints lattice models to streams.
//
// Surveillance campaigns are long-lived: a cohort's posterior accumulates
// evidence across lab round-trips that are hours apart, and an operator
// restarting the service must not lose it. A checkpoint captures
// everything needed to resume inference — cohort risks, the response
// model, the test counter, and the full posterior — in a versioned binary
// format:
//
//	magic "SBGTCKPT" | version u16 | gob header | 2^N little-endian f64
//
// The header travels by gob (it holds an interface value: the response
// model), while the posterior — the bulk of the bytes — is written as raw
// little-endian float64s in 64 KiB chunks, so a 2^24-state checkpoint
// streams at I/O speed instead of gob-encoding 16M values one by one.
// Load renormalizes and validates, so a truncated or corrupted posterior
// is rejected rather than resumed.
package latticeio

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"math"

	"repro/internal/dilution"
	"repro/internal/engine"
	"repro/internal/lattice"
)

const magic = "SBGTCKPT"

// version is the current checkpoint format version.
const version uint16 = 1

// header is the gob-encoded metadata block.
type header struct {
	Risks    []float64
	Response dilution.Response
	Tests    int
	States   uint64
}

func init() {
	// Register every concrete response model so the interface value in the
	// header round-trips. Third-party Response implementations must be
	// registered by the caller with gob.Register before Save/Load.
	gob.Register(dilution.Ideal{})
	gob.Register(dilution.Binary{})
	gob.Register(dilution.Hyperbolic{})
	gob.Register(dilution.Logistic{})
	gob.Register(dilution.Subsample{})
	gob.Register(dilution.CtValue{})
}

// chunkStates is how many float64s each posterior chunk carries (64 KiB).
const chunkStates = 8192

// Save writes a checkpoint of m to w.
func Save(w io.Writer, m *lattice.Model) error {
	return SaveRaw(w, m.Risks(), m.Response(), m.Tests(), m.Posterior().Slice())
}

// SaveRaw writes a checkpoint from raw components: the prior risks, the
// response model, the test counter, and the full posterior in state
// order (length 2^len(risks)). It is the payload writer any dense-shaped
// posterior can use — the cluster driver checkpoints a gathered shard
// array through it without materializing a lattice.Model first.
func SaveRaw(w io.Writer, risks []float64, resp dilution.Response, tests int, post []float64) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return fmt.Errorf("latticeio: write magic: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, version); err != nil {
		return fmt.Errorf("latticeio: write version: %w", err)
	}
	if uint64(len(post)) != uint64(1)<<uint(len(risks)) {
		return fmt.Errorf("latticeio: posterior has %d states, cohort of %d needs %d",
			len(post), len(risks), uint64(1)<<uint(len(risks)))
	}
	h := header{
		Risks:    append([]float64(nil), risks...),
		Response: resp,
		Tests:    tests,
		States:   uint64(len(post)),
	}
	if err := gob.NewEncoder(bw).Encode(&h); err != nil {
		return fmt.Errorf("latticeio: encode header: %w", err)
	}
	// Stream the posterior in fixed-size chunks of raw little-endian
	// float64s; the file is one contiguous state-order array.
	buf := make([]byte, 8*chunkStates)
	for off := 0; off < len(post); off += chunkStates {
		end := off + chunkStates
		if end > len(post) {
			end = len(post)
		}
		n := 0
		for _, v := range post[off:end] {
			binary.LittleEndian.PutUint64(buf[n:], math.Float64bits(v))
			n += 8
		}
		if _, err := bw.Write(buf[:n]); err != nil {
			return fmt.Errorf("latticeio: write posterior: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("latticeio: flush: %w", err)
	}
	return nil
}

// Load reads a checkpoint from r and rebuilds the model on pool with the
// given partition count (0 = engine default).
func Load(r io.Reader, pool *engine.Pool, parts int) (*lattice.Model, error) {
	risks, resp, tests, post, err := LoadRaw(r)
	if err != nil {
		return nil, err
	}
	m, err := lattice.Restore(pool, lattice.Config{Risks: risks, Response: resp, Parts: parts}, post, tests)
	if err != nil {
		return nil, fmt.Errorf("latticeio: %w", err)
	}
	return m, nil
}

// LoadRaw reads a checkpoint from r and returns its raw components
// (risks, response, test counter, state-order posterior) without
// building a model — the counterpart of SaveRaw for callers that
// restore onto a non-lattice backend.
func LoadRaw(r io.Reader) ([]float64, dilution.Response, int, []float64, error) {
	br := bufio.NewReader(r)
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(br, got); err != nil {
		return nil, nil, 0, nil, fmt.Errorf("latticeio: read magic: %w", err)
	}
	if string(got) != magic {
		return nil, nil, 0, nil, fmt.Errorf("latticeio: bad magic %q", got)
	}
	var ver uint16
	if err := binary.Read(br, binary.LittleEndian, &ver); err != nil {
		return nil, nil, 0, nil, fmt.Errorf("latticeio: read version: %w", err)
	}
	if ver != version {
		return nil, nil, 0, nil, fmt.Errorf("latticeio: unsupported version %d (want %d)", ver, version)
	}
	var h header
	if err := gob.NewDecoder(br).Decode(&h); err != nil {
		return nil, nil, 0, nil, fmt.Errorf("latticeio: decode header: %w", err)
	}
	if h.Response == nil {
		return nil, nil, 0, nil, fmt.Errorf("latticeio: checkpoint has no response model")
	}
	n := len(h.Risks)
	if n == 0 || n > lattice.MaxSubjects {
		return nil, nil, 0, nil, fmt.Errorf("latticeio: cohort size %d invalid", n)
	}
	if h.States != uint64(1)<<uint(n) {
		return nil, nil, 0, nil, fmt.Errorf("latticeio: header claims %d states for %d subjects", h.States, n)
	}
	// Grow the posterior chunk by chunk rather than allocating all 2^N
	// states up front: the header is attacker-controllable (a corrupt or
	// crafted checkpoint can claim 2^30 states while carrying ten bytes),
	// and a server restoring evicted cohorts must fail on the short read,
	// not commit gigabytes to a lie.
	post := make([]float64, 0, chunkStates)
	buf := make([]byte, 8*chunkStates)
	for off := uint64(0); off < h.States; off += chunkStates {
		end := off + chunkStates
		if end > h.States {
			end = h.States
		}
		nb := int(end-off) * 8
		if _, err := io.ReadFull(br, buf[:nb]); err != nil {
			return nil, nil, 0, nil, fmt.Errorf("latticeio: read posterior (truncated checkpoint?): %w", err)
		}
		for i := uint64(0); i < end-off; i++ {
			post = append(post, math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:])))
		}
	}
	return h.Risks, h.Response, h.Tests, post, nil
}
