package latticeio

import (
	"bytes"
	"testing"

	"repro/internal/dilution"
	"repro/internal/engine"
	"repro/internal/lattice"
)

// FuzzLoad feeds arbitrary byte streams (seeded with real checkpoints and
// mutations of them) to the checkpoint parser. The invariant under test:
// Load either succeeds with a valid, normalized model or returns an error
// — it never panics and never returns a model with invalid mass.
func FuzzLoad(f *testing.F) {
	pool := engine.NewPool(1)
	defer pool.Close()
	m, err := lattice.New(pool, lattice.Config{
		Risks:    []float64{0.1, 0.3, 0.2},
		Response: dilution.Binary{Sens: 0.9, Spec: 0.98},
	})
	if err != nil {
		f.Fatal(err)
	}
	var good bytes.Buffer
	if err := Save(&good, m); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Add([]byte(magic))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	// A bit-flipped checkpoint.
	flipped := append([]byte(nil), good.Bytes()...)
	if len(flipped) > 20 {
		flipped[20] ^= 0x5a
	}
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Load(bytes.NewReader(data), pool, 0)
		if err != nil {
			return // rejection is the expected outcome for junk
		}
		if got == nil {
			t.Fatal("nil model with nil error")
		}
		mass := got.Mass()
		if !(mass > 0.999999 && mass < 1.000001) {
			t.Fatalf("accepted checkpoint with mass %v", mass)
		}
	})
}
