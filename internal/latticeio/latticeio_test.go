package latticeio

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/dilution"
	"repro/internal/engine"
	"repro/internal/lattice"
)

func newTestPool(t *testing.T) *engine.Pool {
	t.Helper()
	p := engine.NewPool(2)
	t.Cleanup(p.Close)
	return p
}

func buildModel(t *testing.T, pool *engine.Pool, resp dilution.Response) *lattice.Model {
	t.Helper()
	risks := []float64{0.05, 0.2, 0.1, 0.3, 0.15, 0.08}
	m, err := lattice.New(pool, lattice.Config{Risks: risks, Response: resp})
	if err != nil {
		t.Fatal(err)
	}
	// Make the posterior non-trivial.
	if err := m.Update(bitvec.FromIndices(0, 1, 2), dilution.Positive); err != nil {
		t.Fatal(err)
	}
	if err := m.Update(bitvec.FromIndices(3, 4), dilution.Negative); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRoundTrip(t *testing.T) {
	pool := newTestPool(t)
	for _, resp := range []dilution.Response{
		dilution.Ideal{},
		dilution.Binary{Sens: 0.9, Spec: 0.97},
		dilution.Hyperbolic{MaxSens: 0.95, Spec: 0.99, D: 0.3},
		dilution.DefaultCt(),
	} {
		m := buildModel(t, pool, resp)
		var buf bytes.Buffer
		if err := Save(&buf, m); err != nil {
			t.Fatalf("%s: Save: %v", resp.Name(), err)
		}
		got, err := Load(&buf, pool, 0)
		if err != nil {
			t.Fatalf("%s: Load: %v", resp.Name(), err)
		}
		if got.N() != m.N() || got.Tests() != m.Tests() {
			t.Fatalf("%s: N/Tests mismatch: %d/%d vs %d/%d", resp.Name(), got.N(), got.Tests(), m.N(), m.Tests())
		}
		if got.Response().Name() != resp.Name() {
			t.Fatalf("%s: response round-tripped as %s", resp.Name(), got.Response().Name())
		}
		for s := uint64(0); s < m.States(); s++ {
			a, b := m.StateMass(bitvec.Mask(s)), got.StateMass(bitvec.Mask(s))
			if math.Abs(a-b) > 1e-15*math.Max(1, a) {
				t.Fatalf("%s: state %d: %v vs %v", resp.Name(), s, a, b)
			}
		}
		// The restored model must keep working.
		if err := got.Update(bitvec.FromIndices(5), dilution.Negative); err != nil {
			t.Fatalf("%s: post-restore update: %v", resp.Name(), err)
		}
	}
}

func TestRoundTripLargeCrossesChunks(t *testing.T) {
	pool := newTestPool(t)
	risks := make([]float64, 14) // 16384 states = 2 chunks
	for i := range risks {
		risks[i] = 0.07
	}
	m, err := lattice.New(pool, lattice.Config{Risks: risks, Response: dilution.Ideal{}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf, pool, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.States() != m.States() {
		t.Fatalf("states %d vs %d", got.States(), m.States())
	}
	if math.Abs(got.Mass()-1) > 1e-9 {
		t.Fatalf("restored mass %v", got.Mass())
	}
}

func TestLoadRejectsBadMagic(t *testing.T) {
	pool := newTestPool(t)
	if _, err := Load(strings.NewReader("NOTACKPTxxxxxxxxxxxx"), pool, 0); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestLoadRejectsTruncation(t *testing.T) {
	pool := newTestPool(t)
	m := buildModel(t, pool, dilution.Ideal{})
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{4, 12, len(full) / 2, len(full) - 1} {
		if _, err := Load(bytes.NewReader(full[:cut]), pool, 0); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestLoadRejectsWrongVersion(t *testing.T) {
	pool := newTestPool(t)
	m := buildModel(t, pool, dilution.Ideal{})
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(magic)] = 99 // clobber the version field
	if _, err := Load(bytes.NewReader(raw), pool, 0); err == nil {
		t.Fatal("wrong version accepted")
	}
}

func TestLoadRejectsCorruptPosterior(t *testing.T) {
	pool := newTestPool(t)
	m := buildModel(t, pool, dilution.Ideal{})
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Plant a NaN in the last posterior slot (the tail of the file).
	for i := 0; i < 8; i++ {
		raw[len(raw)-8+i] = 0xff
	}
	if _, err := Load(bytes.NewReader(raw), pool, 0); err == nil {
		t.Fatal("NaN posterior accepted")
	}
}

func TestSaveIsDeterministic(t *testing.T) {
	pool := newTestPool(t)
	m := buildModel(t, pool, dilution.Binary{Sens: 0.9, Spec: 0.98})
	var a, b bytes.Buffer
	if err := Save(&a, m); err != nil {
		t.Fatal(err)
	}
	if err := Save(&b, m); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two saves of the same model differ")
	}
}
