// Package sbgt is a scalable implementation of Bayesian lattice-model
// group testing for disease surveillance — a from-scratch Go reproduction
// of "SBGT: Scaling Bayesian-based Group Testing for Disease Surveillance"
// (Chen, Qi, Lu, Tatsuoka; IEEE IPDPS 2023).
//
// # What it does
//
// Given a cohort of up to 30 subjects with individual prior infection
// risks and a pooled-assay response model (including dilution effects),
// sbgt maintains the exact Bayesian posterior over all 2^N infection
// states, selects pooled tests with the Bayesian Halving Algorithm (or
// k-pool look-ahead rules), and classifies subjects as their posterior
// marginals cross decision thresholds. All lattice kernels run
// data-parallel on a partitioned vector engine; an optional TCP
// driver/executor runtime distributes the lattice across processes.
// Beyond the dense 30-subject bound, the truncated SparseModel carries
// cohorts to 64 subjects with an explicit error bound, and RunCampaign
// composes cohort-sized sessions into arbitrarily large population
// screens.
//
// # Quick start
//
//	eng := sbgt.NewEngine(0) // GOMAXPROCS workers
//	defer eng.Close()
//	sess, err := eng.NewSession(sbgt.Config{
//		Risks:    sbgt.UniformRisks(12, 0.05),
//		Response: sbgt.BinaryTest(0.95, 0.99),
//	})
//	if err != nil { ... }
//	result, err := sess.Run(func(pool sbgt.SubjectSet) sbgt.Outcome {
//		return runLabTest(pool) // your LIMS integration
//	})
//
// See examples/ for runnable programs and DESIGN.md for the system map.
package sbgt
