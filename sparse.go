package sbgt

import (
	"repro/internal/halving"
	"repro/internal/sparse"
)

// SparseModel is a truncated lattice posterior: only states above a
// relative mass threshold are retained, with the discarded mass tracked as
// an explicit error bound (Pruned). It scales Bayesian group testing past
// the dense engine's 30-subject limit — up to 64 subjects at realistic
// prevalence — on a single machine.
type SparseModel = sparse.Model

// SparseConfig configures a truncated model; see sparse.Config.
type SparseConfig = sparse.Config

// NewSparseModel enumerates the prior support above the truncation
// threshold (branch-and-bound, without touching the full 2^N lattice) and
// returns the model.
func NewSparseModel(cfg SparseConfig) (*SparseModel, error) {
	return sparse.New(cfg)
}

// SelectPoolSparse runs one Bayesian halving selection on a truncated
// posterior. The error mirrors halving.SelectOn's contract; the sparse
// backend itself never fails, so the error is always nil today.
func SelectPoolSparse(m *SparseModel, maxPool int, localSearch bool) (Selection, error) {
	return halving.SelectOn(sparseAdapter{m}, halving.Options{MaxPool: maxPool, LocalSearch: localSearch})
}

// sparseAdapter lifts the infallible sparse model onto the fallible
// halving.Posterior surface.
type sparseAdapter struct{ m *SparseModel }

func (a sparseAdapter) N() int                       { return a.m.N() }
func (a sparseAdapter) Marginals() ([]float64, error) { return a.m.Marginals(), nil }
func (a sparseAdapter) NegMasses(cands []SubjectSet) ([]float64, error) {
	return a.m.NegMasses(cands), nil
}
func (a sparseAdapter) PrefixNegMasses(order []int) ([]float64, error) {
	return a.m.PrefixNegMasses(order), nil
}
