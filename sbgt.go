package sbgt

import (
	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/dilution"
	"repro/internal/engine"
	"repro/internal/halving"
	"repro/internal/lattice"
)

// SubjectSet identifies a set of subjects (bit i = subject i). Pools,
// truths, and classification sets all use this representation.
type SubjectSet = bitvec.Mask

// Subjects builds a SubjectSet from indices.
func Subjects(idx ...int) SubjectSet { return bitvec.FromIndices(idx...) }

// AllSubjects returns the full cohort of size n.
func AllSubjects(n int) SubjectSet { return bitvec.Full(n) }

// Outcome is a pooled-test result (binary or continuous Ct).
type Outcome = dilution.Outcome

// Positive and Negative are the canonical binary outcomes.
var (
	Positive = dilution.Positive
	Negative = dilution.Negative
)

// Response models the conditional distribution of a pooled test outcome
// given how many infected specimens the pool contains.
type Response = dilution.Response

// Status is a subject's classification state.
type Status = core.Status

// Classification states.
const (
	StatusUnknown  = core.StatusUnknown
	StatusNegative = core.StatusNegative
	StatusPositive = core.StatusPositive
)

// Classification records one subject's final call.
type Classification = core.Classification

// TestRecord logs one physical pooled test.
type TestRecord = core.TestRecord

// TestFunc runs one physical pooled test.
type TestFunc = core.TestFunc

// Config configures a surveillance session; see core.Config for field
// semantics. The zero value of every optional field selects a sensible
// default (halving strategy, 0.99/0.01 thresholds, 64 stages).
type Config = core.Config

// Result summarizes a completed surveillance run.
type Result = core.Result

// Strategy selects the next pool(s) to test.
type Strategy = halving.Strategy

// Selection describes one pool chosen by the halving algorithm.
type Selection = halving.Selection

// Engine owns the worker pool lattice kernels run on. Create one per
// process (or one per isolation domain) and Close it when done.
type Engine struct {
	pool *engine.Pool
}

// NewEngine creates an engine with the given number of workers
// (<= 0 selects GOMAXPROCS).
func NewEngine(workers int) *Engine {
	return &Engine{pool: engine.NewPool(workers)}
}

// Workers reports the engine's parallel width.
func (e *Engine) Workers() int { return e.pool.Workers() }

// Close releases the engine's workers. Sessions created from the engine
// keep working (kernels fall back to inline execution) but lose
// parallelism; close the engine only after the sessions are done.
func (e *Engine) Close() { e.pool.Close() }

// Session is one cohort's classification campaign.
type Session = core.Session

// NewSession builds the prior lattice for the configured cohort.
func (e *Engine) NewSession(cfg Config) (*Session, error) {
	return core.NewSession(e.pool, cfg)
}

// NewModel exposes the raw lattice model for advanced use (custom
// selection rules, diagnostics). Most callers want NewSession.
func (e *Engine) NewModel(risks []float64, resp Response) (*Model, error) {
	return lattice.New(e.pool, lattice.Config{Risks: risks, Response: resp})
}

// Model is the Bayesian lattice posterior over 2^N infection states.
type Model = lattice.Model

// HalvingStrategy returns the Bayesian Halving Algorithm as a session
// strategy. maxPool caps pool size (0 = unbounded); localSearch enables
// the swap-refinement pass.
func HalvingStrategy(maxPool int, localSearch bool) Strategy {
	return halving.Halving{Opts: halving.Options{MaxPool: maxPool, LocalSearch: localSearch}}
}

// IndividualStrategy tests one subject at a time (the no-pooling baseline).
func IndividualStrategy() Strategy { return halving.Individual{} }

// DorfmanStrategy cycles fixed blocks of the given size (the classic
// non-adaptive design).
func DorfmanStrategy(blockSize int) Strategy { return &halving.Dorfman{BlockSize: blockSize} }

// SelectPool runs one halving selection on a raw model.
func SelectPool(m *Model, maxPool int, localSearch bool) Selection {
	return halving.Select(m, halving.Options{MaxPool: maxPool, LocalSearch: localSearch})
}

// SelectPools runs the depth-pool look-ahead rule on a raw model.
func SelectPools(m *Model, depth, maxPool int) []Selection {
	return halving.SelectLookahead(m, depth, halving.Options{MaxPool: maxPool})
}
