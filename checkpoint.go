package sbgt

import (
	"io"

	"repro/internal/core"
	"repro/internal/latticeio"
)

// SaveModel checkpoints a lattice model to w: risks, response model, test
// counter, and the full posterior, in a versioned binary format. Custom
// Response implementations (not constructed by this package) must be
// registered with encoding/gob before saving.
func SaveModel(w io.Writer, m *Model) error {
	return latticeio.Save(w, m)
}

// LoadModel restores a checkpointed model onto the engine. The posterior
// is validated and renormalized; corrupt or truncated checkpoints are
// rejected.
func (e *Engine) LoadModel(r io.Reader) (*Model, error) {
	return latticeio.Load(r, e.pool, 0)
}

// SaveSession checkpoints a surveillance session mid-campaign (or after
// completion): classifications, counters, the test log, and the live
// posterior. Use (*Engine).LoadSession to resume.
func SaveSession(w io.Writer, s *Session) error {
	return s.SaveSession(w)
}

// LoadSession resumes a checkpointed session on the engine. strategy
// supplies the selection policy for the resumed campaign (nil = the
// default halving strategy); strategies are deliberately not serialized,
// so an operator may change policy across a restart.
func (e *Engine) LoadSession(r io.Reader, strategy Strategy) (*Session, error) {
	return core.LoadSession(r, e.pool, strategy)
}
